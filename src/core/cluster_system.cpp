#include "core/cluster_system.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "audit/sim_auditor.hpp"
#include "fault/fault_injector.hpp"
#include "hw/transfer_engine.hpp"
#include "obs/telemetry.hpp"
#include "simcore/log.hpp"

namespace windserve::core {

using workload::Request;
using workload::RequestState;

namespace {

hw::Topology
make_cluster_topology(const ClusterConfig &cfg)
{
    hw::TopologyConfig tc = cfg.pod.topology;
    tc.num_nodes = cfg.num_nodes;
    tc.inter_node_links = cfg.inter_node_links;
    return hw::Topology(tc);
}

/** Pod k's RNG stream; k = 0 keeps the base seed so a 1-pod cluster
 *  reproduces WindServeSystem byte-for-byte. */
std::uint64_t
pod_seed(std::uint64_t base, std::size_t k)
{
    return base ^ (static_cast<std::uint64_t>(k) * 0x9e3779b97f4a7c15ULL);
}

} // namespace

double
cluster_lookahead_floor(const hw::Topology &topo)
{
    const hw::TopologyConfig &tc = topo.config();
    if (tc.num_nodes <= 1)
        return 2 * tc.link_latency; // PCIe RC hop between same-node pods
    double floor = tc.nic_latency;
    for (const hw::InterNodeLink &l : tc.inter_node_links)
        floor = std::min(floor, l.latency);
    return floor;
}

ClusterServeSystem::ClusterServeSystem(ClusterConfig cfg)
    : cfg_(std::move(cfg)), topo_(make_cluster_topology(cfg_)),
      balancer_(cfg_.num_nodes * std::max<std::size_t>(cfg_.pods_per_node, 1))
{
    if (cfg_.pods_per_node == 0)
        throw std::invalid_argument(
            "ClusterServeSystem: need at least one pod per node");
    const std::size_t total = cfg_.num_nodes * cfg_.pods_per_node;
    const bool multi = total > 1;

    // Multi-pod clusters are partitioned into logical processes: each
    // pod simulates on its own kernel; the hub (this->sim_) keeps the
    // arrivals, the balancer, the NIC fabric and the chaos engine. A
    // 1-pod cluster shares the hub kernel — the historical (and
    // WindServeSystem-identical) path.
    if (multi) {
        ctl_latency_ = cluster_lookahead_floor(topo_);
        pod_sims_.reserve(total);
        for (std::size_t k = 0; k < total; ++k)
            pod_sims_.push_back(std::make_unique<sim::Simulator>());
    }

    for (std::size_t k = 0; k < total; ++k) {
        WindServeConfig pc = cfg_.pod;
        // Each pod owns one island; the cluster fabric lives up here.
        pc.topology.num_nodes = 1;
        pc.topology.inter_node_links.clear();
        pc.seed = pod_seed(cfg_.pod.seed, k);
        std::string prefix = multi ? "pod" + std::to_string(k) + "/" : "";

        PodHooks hooks;
        hooks.on_finished = [this, k](Request *r) {
            // Balancer accounting lives on the hub. Mid-window the pod
            // may not touch it: ship a zero-delay message instead (the
            // release lands at the exact finish timestamp).
            if (!lp_ || lp_->in_hub_phase()) {
                retire_finished(r);
                return;
            }
            lp_->post(k, pod_sims_[k]->now(),
                      [this, r] { retire_finished(r); });
        };
        hooks.offload_decode = [this](Pod &p, Request *r) {
            return maybe_offload(p, r);
        };
        hooks.redispatch_remote = [this](Pod &p, Request *r) {
            return maybe_redispatch_remote(p, r);
        };
        hooks.on_prefill_crash = [this](Pod &p,
                                        std::vector<Request *> &victims) {
            sweep_cross_transfers(p, victims);
        };
        if (multi) {
            // The injector runs on the hub; recovery-window closes that
            // happen mid-window travel as zero-delay messages.
            hooks.decode_ready = [this](Pod &p, Request *r) {
                if (!lp_ || lp_->in_hub_phase()) {
                    faults()->note_decode_ready(r);
                    return;
                }
                lp_->post(p.index(), pod_sims_[p.index()]->now(),
                          [this, r] { faults()->note_decode_ready(r); });
            };
        }
        pods_.push_back(std::make_unique<Pod>(
            multi ? *pod_sims_[k] : sim_, pc, std::move(hooks),
            std::move(prefix), k));
    }
    for (auto &p : pods_) {
        pod_of_instance_[&p->prefill_instance()] = p.get();
        pod_of_instance_[&p->decode_instance()] = p.get();
    }

    // One processor-sharing egress link per node carries cross-pod KV.
    // Multi-node clusters use the NIC/IB fabric; pods sharing a single
    // node cross the PCIe root complex instead. A 1-pod cluster has no
    // cross-pod traffic and gets no extra channels at all.
    if (multi) {
        const hw::TopologyConfig &tc = topo_.config();
        for (std::size_t n = 0; n < cfg_.num_nodes; ++n) {
            hw::Link egress;
            if (cfg_.num_nodes > 1) {
                // Per-node egress: the weakest inter-node path this
                // node could have to ship KV over. Per-pair overrides
                // (an oversubscribed spine, a slow WAN hop) pull the
                // node's effective egress below the NIC defaults;
                // without overrides this is exactly the uniform NIC
                // link, so historical runs are unchanged.
                egress = hw::Link{hw::LinkType::InterNode, tc.nic_bw,
                                  tc.nic_latency};
                for (std::size_t m = 0; m < cfg_.num_nodes; ++m) {
                    if (m == n)
                        continue;
                    hw::Link l = topo_.inter_node_link(n, m);
                    egress.bandwidth = std::min(egress.bandwidth,
                                                l.bandwidth);
                    egress.latency = std::min(egress.latency, l.latency);
                }
            } else {
                egress = hw::Link{hw::LinkType::PCIeRC, tc.pcie_rc_bw,
                                  2 * tc.link_latency};
            }
            nics_.push_back(std::make_unique<hw::SharedChannel>(
                sim_, egress, "nic/" + std::to_string(n)));
        }
    }

    // Replicated control plane: N scheduler replicas as actors on the
    // hub timeline. Built only on request (>= 2 replicas) — otherwise
    // no channels, no RNG draws, no events, so single-leader clusters
    // stay byte-identical to the historical path.
    if (cfg_.ctrl.replicas >= 2) {
        ctrl::ControlPlaneConfig cc = cfg_.ctrl;
        if (cc.seed == 0)
            cc.seed = cfg_.pod.seed ^ 0xf1bbcdcbfa53e0abULL;
        if (cc.link.bandwidth <= 0.0) {
            const hw::TopologyConfig &tc = topo_.config();
            cc.link = hw::Link{hw::LinkType::InterNode, tc.nic_bw,
                               tc.nic_latency};
        }
        ctrl_ = std::make_unique<ctrl::ControlPlane>(sim_, cc);
        // KV-directory coherence: each pod's BackupRegistry publishes
        // backup growth / drops / crash wipes into the cluster-wide
        // directory. The directory lives on the hub, so pod-thread
        // notifications travel as timestamped hub messages mid-window.
        for (std::size_t k = 0; k < pods_.size(); ++k) {
            kvcache::BackupRegistry::Listener lis;
            lis.on_record = [this, k](kvcache::ReqId id,
                                      std::size_t tokens) {
                auto fn = [this, k, id, tokens] {
                    ctrl_->directory().record(id, k, tokens);
                };
                if (!lp_ || lp_->in_hub_phase())
                    fn();
                else
                    lp_->post(k, pod_sims_[k]->now(), fn);
            };
            lis.on_drop = [this, k](kvcache::ReqId id) {
                auto fn = [this, k, id] {
                    ctrl_->directory().drop(id, k);
                };
                if (!lp_ || lp_->in_hub_phase())
                    fn();
                else
                    lp_->post(k, pod_sims_[k]->now(), fn);
            };
            lis.on_clear = [this, k] {
                auto fn = [this, k] {
                    ctrl_->directory().invalidate_pod(k);
                };
                if (!lp_ || lp_->in_hub_phase())
                    fn();
                else
                    lp_->post(k, pod_sims_[k]->now(), fn);
            };
            pods_[k]->backup_registry().set_listener(std::move(lis));
        }
    }
}

std::size_t
ClusterServeSystem::num_gpus() const
{
    return pods_.size() * (cfg_.pod.prefill_parallelism.num_gpus() +
                           cfg_.pod.decode_parallelism.num_gpus());
}

double
ClusterServeSystem::tokens_of(const Request *r)
{
    return static_cast<double>(r->prompt_tokens + r->output_tokens);
}

std::size_t
ClusterServeSystem::home_of(const Request *r) const
{
    auto it = home_pod_.find(r->id);
    return it == home_pod_.end() ? 0 : it->second;
}

std::vector<bool>
ClusterServeSystem::live_pods() const
{
    std::vector<bool> live(pods_.size());
    for (std::size_t k = 0; k < pods_.size(); ++k) {
        live[k] = !(pods_[k]->prefill_instance().is_down() &&
                    pods_[k]->decode_instance().is_down());
    }
    return live;
}

void
ClusterServeSystem::on_arrival(Request *r)
{
    if (!ctrl_) {
        admit_arrival(r);
        return;
    }
    // Admission is an externally visible scheduler decision: it takes
    // effect only once a majority of control replicas commit it.
    ctrl_->propose(ctrl::CommandKind::Admit, r->id,
                   [this, r] { admit_arrival(r); });
}

void
ClusterServeSystem::admit_arrival(Request *r)
{
    std::vector<bool> live = live_pods();
    std::size_t k = balancer_.route(tokens_of(r), &live);
    home_pod_[r->id] = k;
    pods_[k]->on_arrival(r);
}

void
ClusterServeSystem::retire_finished(Request *r)
{
    auto it = home_pod_.find(r->id);
    if (it != home_pod_.end()) {
        balancer_.release(it->second, tokens_of(r));
        home_pod_.erase(it);
    }
    if (outstanding_ > 0)
        --outstanding_;
    // Traffic drained: stop the control plane's timers so heartbeats
    // do not pump the simulation to the horizon for nothing.
    if (outstanding_ == 0 && ctrl_)
        ctrl_->stop();
}

bool
ClusterServeSystem::maybe_offload(Pod &src, Request *r)
{
    if (!cfg_.allow_cross_pod || pods_.size() < 2)
        return false;
    const std::size_t k = src.index();
    // Local-only admission test — the pod's own thread may not read
    // remote pod state mid-window. The remote scan happens on the hub
    // timeline one control-latency later, when every pod's state at
    // that timestamp is exact.
    if (!src.decode_instance().is_down() &&
        src.decode_instance().kv_used_fraction() < cfg_.offload_highwater)
        return false;
    src.hold_for_offload(r);
    lp_->post(k, pod_sims_[k]->now() + ctl_latency_,
              [this, k, r, inc = r->incarnation] {
                  if (!ctrl_) {
                      decide_offload(k, r, inc);
                      return;
                  }
                  // Offload is externally visible: replicate first,
                  // decide at commit. The hold survives the commit
                  // latency; a crash meanwhile sweeps the hold and the
                  // apply falls through harmlessly.
                  ctrl_->propose(ctrl::CommandKind::Offload, r->id,
                                 [this, k, r, inc] {
                                     decide_offload(k, r, inc);
                                 });
              });
    return true;
}

void
ClusterServeSystem::decide_offload(std::size_t k, Request *r,
                                   std::uint32_t inc)
{
    if (r->incarnation != inc)
        return; // source prefill crashed meanwhile; r was re-dispatched
    Pod &src = *pods_[k];
    if (!src.take_held_offload(r->id))
        return; // the hold was swept by a crash; victim already re-routed
    const bool forced = src.decode_instance().is_down();
    // Least-pressured remote decode instance that is up; unless the
    // local decode is dead, the target must also be genuinely cooler
    // (below the low-water mark) or the copy just moves the problem.
    std::size_t best = CrossPodBalancer::npos;
    double best_frac = 0.0;
    for (std::size_t j = 0; j < pods_.size(); ++j) {
        if (j == k)
            continue;
        engine::Instance &d = pods_[j]->decode_instance();
        if (d.is_down())
            continue;
        double f = d.kv_used_fraction();
        if (!forced && f >= cfg_.offload_lowwater)
            continue;
        if (best == CrossPodBalancer::npos || f < best_frac) {
            best = j;
            best_frac = f;
        }
    }
    if (best == CrossPodBalancer::npos) {
        // Refused (no cooler pod): fall back to the local hand-off the
        // pod would have started had the cluster not claimed it.
        src.begin_local_decode_transfer(r);
        return;
    }

    ++cross_offloads_;
    audit::transition(audit(), *r, RequestState::Transferring);
    cross_transferring_[r->id] = CrossXfer{r, k, best};
    // Cross-node copies cannot overlap the (finished) prefill pass, so
    // the full prompt KV crosses the fabric.
    double bytes = src.transfer().bytes_for_tokens(
        static_cast<double>(r->prompt_tokens));
    hw::SharedChannel &nic = *nics_[node_of_pod(k)];
    nic.submit(bytes, [this, r, inc] {
        auto it = cross_transferring_.find(r->id);
        if (it == cross_transferring_.end() || r->incarnation != inc)
            return; // source prefill crashed mid-copy; already re-routed
        CrossXfer x = it->second;
        cross_transferring_.erase(it);
        pods_[x.src]->prefill_instance().release_kv(r);
        balancer_.release(x.src, tokens_of(r));
        balancer_.assign(x.dst, tokens_of(r));
        home_pod_[r->id] = x.dst;
        pods_[x.dst]->admit_remote_decode(r);
    });
}

bool
ClusterServeSystem::maybe_redispatch_remote(Pod &src, Request *r)
{
    if (!cfg_.allow_cross_pod || pods_.size() < 2)
        return false;
    // The pod handles its own recovery while either instance lives.
    if (!src.prefill_instance().is_down() ||
        !src.decode_instance().is_down())
        return false;
    std::vector<bool> live = live_pods();
    std::size_t dst = balancer_.least_loaded_except(src.index(), &live);
    if (dst == CrossPodBalancer::npos)
        return false;
    ++cross_redispatches_;
    balancer_.release(src.index(), tokens_of(r));
    balancer_.assign(dst, tokens_of(r));
    home_pod_[r->id] = dst;
    pods_[dst]->on_arrival(r);
    return true;
}

void
ClusterServeSystem::sweep_cross_transfers(Pod &src,
                                          std::vector<Request *> &victims)
{
    for (auto it = cross_transferring_.begin();
         it != cross_transferring_.end();) {
        if (it->second.src == src.index()) {
            victims.push_back(it->second.r);
            it = cross_transferring_.erase(it);
        } else {
            ++it;
        }
    }
}

void
ClusterServeSystem::wire_trace(obs::TraceRecorder &rec)
{
    trace_master_ = &rec;
    if (!pod_sims_.empty()) {
        // Each logical process records into a private shard (its own
        // timebase, written only by its own thread); replay() absorbs
        // the shards back into the master in pod order.
        trace_shards_.reserve(pods_.size());
        for (std::size_t k = 0; k < pods_.size(); ++k) {
            trace_shards_.push_back(
                std::make_unique<obs::TraceRecorder>(*pod_sims_[k]));
            pods_[k]->wire_trace(*trace_shards_[k]);
        }
    } else {
        for (auto &p : pods_)
            p->wire_trace(rec);
    }
    for (auto &nic : nics_)
        nic->set_trace(&rec, "interconnect", nic->name());
}

void
ClusterServeSystem::wire_audit(audit::SimAuditor &a)
{
    for (auto &p : pods_)
        p->wire_audit(a);
    for (auto &nic : nics_)
        nic->set_audit(&a);
    if (ctrl_)
        ctrl_->set_audit(&a);
}

void
ClusterServeSystem::wire_faults(fault::FaultInjector &inj)
{
    for (auto &p : pods_)
        p->wire_faults(inj);
    for (auto &nic : nics_)
        inj.add_shared_channel(nic.get());
    // Node fault domains: every instance of every pod on the node goes
    // down together under a NodeCrash.
    for (std::size_t n = 0; n < cfg_.num_nodes; ++n) {
        std::vector<engine::Instance *> group;
        for (std::size_t k = n * cfg_.pods_per_node;
             k < (n + 1) * cfg_.pods_per_node; ++k) {
            group.push_back(&pods_[k]->prefill_instance());
            group.push_back(&pods_[k]->decode_instance());
        }
        inj.add_node_group(std::move(group));
    }
    inj.set_redispatch([this](Request *r) {
        if (!ctrl_) {
            pods_[home_of(r)]->redispatch_after_fault(r);
            return;
        }
        ctrl_->propose(ctrl::CommandKind::Redispatch, r->id, [this, r] {
            // New-leader resume path: consult the KV-backup directory.
            // A hit means the victim's checkpointed prefix survives at
            // its home pod, so the re-dispatch restores from the
            // backup instead of recomputing from scratch (the pod's
            // scheduler reads its registry — the directory's backing
            // truth — when it rebuilds the plan).
            ++directory_consults_;
            const ctrl::KvDirectory::Entry *e =
                ctrl_->directory().lookup(r->id);
            if (e && e->pod == home_of(r))
                ++directory_hits_;
            pods_[home_of(r)]->redispatch_after_fault(r);
        });
    });
    if (ctrl_) {
        inj.set_ctrl_fault([this](const fault::FaultEvent &ev) {
            if (ev.kind == fault::FaultKind::LeaderCrash)
                ctrl_->on_leader_crash(ev.param, ev.target);
            else
                ctrl_->on_partition(ev.param, ev.target);
        });
    }
    inj.set_crash_hook(
        [this](engine::Instance &inst, std::vector<Request *> &victims) {
            auto it = pod_of_instance_.find(&inst);
            if (it != pod_of_instance_.end())
                it->second->on_instance_crashed(inst, victims);
        });
}

void
ClusterServeSystem::wire_telemetry(obs::Telemetry &t)
{
    telemetry_tick_ = std::max(t.config().sample_every, 0.0);
    if (!pod_sims_.empty()) {
        for (auto &s : pod_sims_)
            t.arm_lp(*s); // attribute pod-thread events to the profiler
        if (t.journal()) {
            // Pod-side decisions journal into per-pod shards; replay()
            // merges them back (time order, pod-index tie-break).
            journal_master_ = t.journal();
            journal_shards_.reserve(pods_.size());
            for (auto &p : pods_) {
                journal_shards_.push_back(
                    std::make_unique<obs::DecisionJournal>());
                p->set_journal_shard(journal_shards_.back().get());
            }
        }
    }
    for (std::size_t k = 0; k < pods_.size(); ++k) {
        pods_[k]->wire_telemetry(t, "pod=\"" + std::to_string(k) + "\"");
    }
    obs::MetricRegistry &reg = t.registry();
    for (auto &nic_ptr : nics_) {
        hw::SharedChannel *nic = nic_ptr.get();
        const std::string lbl = "link=\"" + nic->name() + "\"";
        reg.gauge("ws_link_inflight_bytes", lbl,
                  [nic] { return nic->inflight_bytes(); },
                  "Bytes submitted but not yet delivered per link");
        reg.counter("ws_link_bytes_total", lbl,
                    [nic] { return nic->total_bytes(); },
                    "Lifetime bytes submitted per link");
        reg.counter("ws_link_transfers_total", lbl,
                    [nic] {
                        return static_cast<double>(nic->completed());
                    },
                    "Transfers completed per link");
    }
    reg.counter("ws_cluster_requests_routed_total", "",
                [this] {
                    return static_cast<double>(balancer_.routed());
                },
                "Requests admitted through the cross-pod balancer");
    reg.counter("ws_cluster_cross_offloads_total", "",
                [this] {
                    return static_cast<double>(cross_offloads_);
                },
                "Decode offloads shipped to another pod");
    reg.counter("ws_cluster_cross_redispatches_total", "",
                [this] {
                    return static_cast<double>(cross_redispatches_);
                },
                "Crash victims re-homed to another pod");
    for (std::size_t k = 0; k < pods_.size(); ++k) {
        reg.gauge("ws_cluster_pod_load",
                  "pod=\"" + std::to_string(k) + "\"",
                  [this, k] { return balancer_.load(k); },
                  "Outstanding tokens charged to each pod");
    }
    if (ctrl_) {
        // The control plane runs on the hub thread; its failover
        // decisions journal straight into the master (merge_shards
        // stable-sorts, keeping master entries first on time ties).
        if (t.journal())
            ctrl_->set_journal(t.journal());
        ctrl::ControlPlane *cp = ctrl_.get();
        reg.gauge("ws_ctrl_term", "",
                  [cp] { return static_cast<double>(cp->max_term()); },
                  "Highest term reached by any control replica");
        reg.gauge("ws_ctrl_leader", "",
                  [cp] {
                      std::size_t l = cp->leader();
                      return l == ctrl::ControlPlane::kNone
                                 ? -1.0
                                 : static_cast<double>(l);
                  },
                  "Acting leader replica index (-1 while none)");
        reg.counter("ws_ctrl_elections_total", "",
                    [cp] { return static_cast<double>(cp->elections()); },
                    "Leader elections won");
        reg.counter("ws_ctrl_commits_total", "",
                    [cp] { return static_cast<double>(cp->commits()); },
                    "Log entries committed (leader side)");
        reg.counter("ws_ctrl_applies_total", "",
                    [cp] { return static_cast<double>(cp->applies()); },
                    "Scheduler intents applied exactly once");
        reg.counter("ws_ctrl_messages_total", "",
                    [cp] {
                        return static_cast<double>(cp->messages_sent());
                    },
                    "Protocol messages put on the control fabric");
        reg.counter("ws_ctrl_heartbeats_total", "",
                    [cp] { return static_cast<double>(cp->heartbeats()); },
                    "AppendEntries rounds fired by leaders");
        reg.gauge("ws_ctrl_pending_intents", "",
                  [cp] {
                      return static_cast<double>(cp->pending_intents());
                  },
                  "Proposed scheduler intents not yet applied");
        reg.gauge("ws_ctrl_directory_entries", "",
                  [cp] {
                      return static_cast<double>(cp->directory().size());
                  },
                  "Live entries in the KV-backup directory");
        reg.counter("ws_ctrl_failovers_total", "",
                    [cp] { return static_cast<double>(cp->failovers()); },
                    "Completed leader failovers");
    }
}

void
ClusterServeSystem::replay(const std::vector<workload::Request> &trace,
                           double horizon)
{
    requests_ = trace;
    outstanding_ = requests_.size();
    if (!pod_sims_.empty()) {
        sim::LpScheduler::Config lc;
        lc.lookahead = ctl_latency_;
        lc.window = cfg_.lp_window;
        lc.threads = run_intra_threads_;
        lc.tick = telemetry_tick_;
        lp_ = std::make_unique<sim::LpScheduler>(sim_, lc);
        for (auto &s : pod_sims_)
            lp_->add_lp(*s);
    }
    if (ctrl_)
        ctrl_->start();
    {
        sim::SourceScope src(sim_, "arrival");
        for (auto &r : requests_) {
            Request *ptr = &r;
            sim_.schedule_at(r.arrival_time,
                             [this, ptr] { on_arrival(ptr); });
        }
    }
    if (lp_)
        lp_->run_until(horizon);
    else
        sim_.run_until(horizon);
    for (auto &p : pods_)
        p->finalize_stats();
    // Fold the per-pod observability shards back into the shared
    // exports, in pod order, BEFORE run() appends request lifecycles
    // and counter tracks — so every export is byte-identical at any
    // --intra-threads.
    if (trace_master_) {
        for (auto &shard : trace_shards_)
            trace_master_->absorb_shard(*shard);
    }
    if (journal_master_) {
        std::vector<obs::DecisionJournal *> shards;
        shards.reserve(journal_shards_.size());
        for (auto &s : journal_shards_)
            shards.push_back(s.get());
        journal_master_->merge_shards(shards);
    }
}

void
ClusterServeSystem::fill_system_metrics(metrics::RunMetrics &m)
{
    double pc = 0.0, pb = 0.0, dc = 0.0, db = 0.0;
    for (auto &p : pods_) {
        pc += p->prefill_instance().mean_compute_utilization();
        pb += p->prefill_instance().mean_bandwidth_utilization();
        dc += p->decode_instance().mean_compute_utilization();
        db += p->decode_instance().mean_bandwidth_utilization();
    }
    double n = static_cast<double>(pods_.size());
    m.prefill_compute_util = pc / n;
    m.prefill_bandwidth_util = pb / n;
    m.decode_compute_util = dc / n;
    m.decode_bandwidth_util = db / n;
    if (ctrl_) {
        m.leader_crashes = ctrl_->leader_crashes();
        m.control_partitions = ctrl_->partitions();
        m.ctrl_elections = ctrl_->elections();
        m.ctrl_commits = ctrl_->commits();
        m.failovers = ctrl_->failovers();
        m.failover_latency = ctrl_->failover_latency();
    }
}

std::uint64_t
ClusterServeSystem::total_dispatches() const
{
    std::uint64_t sum = 0;
    for (const auto &p : pods_)
        sum += p->scheduler().coordinator().dispatches();
    return sum;
}

std::uint64_t
ClusterServeSystem::total_reschedules() const
{
    std::uint64_t sum = 0;
    for (const auto &p : pods_)
        sum += p->scheduler().coordinator().reschedules();
    return sum;
}

std::uint64_t
ClusterServeSystem::total_migrations() const
{
    std::uint64_t sum = 0;
    for (const auto &p : pods_)
        sum += p->migration().completed();
    return sum;
}

std::uint64_t
ClusterServeSystem::total_backups() const
{
    std::uint64_t sum = 0;
    for (const auto &p : pods_)
        sum += p->backup().backups_taken();
    return sum;
}

} // namespace windserve::core
