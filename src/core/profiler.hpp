/**
 * @file
 * The Global Scheduler's Profiler (paper §3.2.1).
 *
 * Characterises each instance's compute capability by fitting the
 * paper's Eq. (1)/(2):
 *
 *     T_prefill(N)      = a_p N + b_p N^2 + c_p
 *     T_decode(sumL)    = a_d sumL + c_d
 *
 * via least squares over observed (input, duration) samples. The paper
 * obtains the parameters "by profiling and quadratic regression before
 * runtime"; calibrate_offline() reproduces that step by sweeping probe
 * sizes through the instance cost model with execution noise, and the
 * fit keeps refining online from real iteration observations.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "model/cost_model.hpp"
#include "simcore/rng.hpp"

namespace windserve::core {

/** Quadratic-regression fit of Eq. (1). */
struct PrefillFit {
    double a = 0.0, b = 0.0, c = 0.0;
    double predict(double n) const { return a * n + b * n * n + c; }
};

/** Linear fit of Eq. (2). */
struct DecodeFit {
    double a = 0.0, c = 0.0;
    double predict(double sum_l) const { return a * sum_l + c; }
};

/**
 * Least-squares fit of y = a x + b x^2 + c over samples.
 * Requires at least 3 samples with distinct x.
 */
PrefillFit fit_quadratic(const std::vector<double> &x,
                         const std::vector<double> &y);

/** Least-squares fit of y = a x + c. Requires >= 2 distinct samples. */
DecodeFit fit_linear(const std::vector<double> &x,
                     const std::vector<double> &y);

/** Per-instance performance model maintained by the Global Scheduler. */
class Profiler
{
  public:
    Profiler() = default;

    /**
     * Offline profiling pass: probe the instance at a grid of prefill
     * sizes / context sums through its (noisy) cost model and fit.
     */
    void calibrate_offline(const model::CostModel &cost, sim::Rng &rng,
                           double noise_sigma = 0.03,
                           std::size_t samples_per_probe = 3);

    /** Online observation of a pure prefill pass. */
    void observe_prefill(double n_tokens, double duration);

    /** Online observation of a pure decode iteration. */
    void observe_decode(double batch, double sum_context, double duration);

    /** Predicted prefill latency for @p n_tokens (Eq. 1). */
    double predict_prefill(double n_tokens) const;

    /** Predicted decode iteration latency (Eq. 2). */
    double predict_decode(double sum_context) const;

    /**
     * Algorithm 1 line 1: predicted completion time of a new request's
     * prefill given the queued tokens ahead of it and the remaining time
     * of the in-flight batch.
     */
    double predict_ttft(double queued_tokens, double new_tokens,
                        double inflight_remaining) const;

    const PrefillFit &prefill_fit() const { return prefill_fit_; }
    const DecodeFit &decode_fit() const { return decode_fit_; }

    std::size_t prefill_samples() const { return px_.size(); }
    std::size_t decode_samples() const { return dx_.size(); }

    /** Refit from all accumulated samples every this many observations. */
    void set_refit_interval(std::size_t n) { refit_interval_ = n; }

  private:
    void maybe_refit();

    std::vector<double> px_, py_; ///< prefill samples (N, T)
    std::vector<double> dx_, dy_; ///< decode samples (sumL, T)
    PrefillFit prefill_fit_;
    DecodeFit decode_fit_;
    bool fitted_ = false;
    std::size_t refit_interval_ = 64;
    std::size_t since_refit_ = 0;
    /** Cap sample memory; oldest samples are discarded. */
    static constexpr std::size_t kMaxSamples = 4096;
};

} // namespace windserve::core
