/**
 * @file
 * WindServe: the complete phase-disaggregated serving system with
 * stream-based dynamic scheduling (the paper's contribution).
 *
 * Wiring (paper Fig. 4): a Global Scheduler (Profiler + Coordinator)
 * sits above a prefill instance and a decode instance, each with a FCFS
 * local scheduler and a paged KV manager. KV transfers overlap prefill
 * computation; Dynamic Prefill Dispatch sends prefills to the decode
 * instance's SBD stream under prefill overload; Dynamic Rescheduling
 * migrates long decodes back to the prefill instance (stall-free) under
 * memory pressure, with proactive KV backups shrinking migration cost.
 *
 * Ablation switches reproduce the §5.4 variants:
 *   enable_sbd = false            -> WindServe-no-split
 *   coord.enable_rescheduling = false -> WindServe-no-resche
 */
#pragma once

#include <map>
#include <memory>

#include "core/global_scheduler.hpp"
#include "engine/serving_system.hpp"
#include "hw/topology.hpp"
#include "transfer/kv_transfer.hpp"
#include "transfer/migration.hpp"

namespace windserve::core {

/** Full configuration of a WindServe deployment. */
struct WindServeConfig {
    model::ModelSpec model = model::ModelSpec::opt_13b();
    hw::TopologyConfig topology;
    model::ParallelismConfig prefill_parallelism{2, 1};
    model::ParallelismConfig decode_parallelism{2, 1};
    model::CostModelParams cost_params;

    CoordinatorConfig coordinator;
    transfer::KvTransferConfig transfer{
        transfer::TransferPolicy::Overlapped, 0.05};
    transfer::MigrationConfig migration;
    transfer::BackupManager::Config backup;

    /** SLOs drive the assist budget and (by default) `thrd`. */
    double ttft_slo = 0.25;
    double tpot_slo = 0.10;

    std::size_t block_size = 16;
    std::size_t max_batch_size = 256;
    std::size_t max_prefill_tokens = 4096;
    std::size_t chunk_size = 512;
    /** Chunk size the prefill instance uses while hosting migrated
     *  decodes (large = keep prefill throughput). */
    std::size_t prefill_chunk_size = 2048;
    /** Fraction of decode KV capacity reserved from dispatch. */
    double dispatch_reserve_fraction = 0.06;

    /** Stream-based disaggregation on the decode instance (§3.4). */
    bool enable_sbd = true;

    /** Preempt to host memory on KV exhaustion (park when disabled). */
    bool swap_enabled = true;
    /** Host DRAM budget per instance's swap pool. */
    double host_memory_bytes = 256e9;
    /** Override the derived per-instance KV capacity (tokens); 0 keeps
     *  the cost-model value. For tests and capacity studies. */
    std::size_t kv_capacity_tokens_override = 0;

    double exec_noise_sigma = 0.03;
    std::uint64_t seed = 7;
};

/** See file comment. */
class WindServeSystem : public engine::ServingSystem
{
  public:
    explicit WindServeSystem(WindServeConfig cfg);

    std::string name() const override { return "WindServe"; }
    std::size_t num_gpus() const override;

    // introspection for tests and ablation studies
    engine::Instance &prefill_instance() { return *prefill_; }
    engine::Instance &decode_instance() { return *decode_; }
    GlobalScheduler &scheduler() { return *scheduler_; }
    transfer::MigrationManager &migration() { return *migration_; }
    transfer::BackupManager &backup() { return *backup_; }
    sim::Simulator &simulator() override { return sim_; }
    const WindServeConfig &config() const { return cfg_; }

  protected:
    void replay(const std::vector<workload::Request> &trace,
                double horizon) override;
    void fill_system_metrics(metrics::RunMetrics &m) override;
    void wire_trace(obs::TraceRecorder &rec) override;
    void wire_audit(audit::SimAuditor &a) override;
    void wire_faults(fault::FaultInjector &inj) override;
    void wire_telemetry(obs::Telemetry &t) override;
    std::vector<workload::Request> take_requests() override
    {
        return std::move(requests_);
    }

  private:
    void on_arrival(workload::Request *r);
    void on_prefill_complete_at_prefill(workload::Request *r);
    void on_prefill_complete_at_decode(workload::Request *r);
    void on_finished(workload::Request *r);
    void finish_prefill_only(engine::Instance &inst, workload::Request *r);

    /** Backup-aware re-dispatch of a crash victim (paper's recovery
     *  advantage: resume from the prefill-side KV backup when one
     *  survives; recompute the prefill otherwise). */
    void redispatch_after_fault(workload::Request *r);
    void on_instance_crashed(engine::Instance &inst,
                             std::vector<workload::Request *> &victims);

    WindServeConfig cfg_;
    sim::Simulator sim_;
    hw::Topology topo_;
    std::unique_ptr<engine::Instance> prefill_;
    std::unique_ptr<engine::Instance> decode_;
    std::unique_ptr<transfer::KvTransferManager> xfer_;
    kvcache::BackupRegistry backup_registry_;
    std::unique_ptr<transfer::MigrationManager> migration_;
    std::unique_ptr<transfer::BackupManager> backup_;
    std::unique_ptr<GlobalScheduler> scheduler_;
    std::vector<workload::Request> requests_;
    std::size_t outstanding_ = 0;
    /** Requests whose prefill KV copy is in flight — invisible to both
     *  instances' queues, so a prefill crash must sweep them here.
     *  Ordered map: the crash hook iterates it. */
    std::map<workload::RequestId, workload::Request *> transferring_;
};

} // namespace windserve::core
