/**
 * @file
 * WindServe: the complete phase-disaggregated serving system with
 * stream-based dynamic scheduling (the paper's contribution).
 *
 * Wiring (paper Fig. 4): a Global Scheduler (Profiler + Coordinator)
 * sits above a prefill instance and a decode instance, each with a FCFS
 * local scheduler and a paged KV manager. KV transfers overlap prefill
 * computation; Dynamic Prefill Dispatch sends prefills to the decode
 * instance's SBD stream under prefill overload; Dynamic Rescheduling
 * migrates long decodes back to the prefill instance (stall-free) under
 * memory pressure, with proactive KV backups shrinking migration cost.
 *
 * The deployment machinery itself lives in core::Pod — this class wraps
 * exactly one hook-free pod (the original single-testbed system, byte-
 * identical to the pre-pod code); ClusterServeSystem shards many pods
 * under a cross-pod balancer.
 *
 * Ablation switches reproduce the §5.4 variants:
 *   enable_sbd = false            -> WindServe-no-split
 *   coord.enable_rescheduling = false -> WindServe-no-resche
 */
#pragma once

#include <memory>

#include "core/global_scheduler.hpp"
#include "core/pod.hpp"
#include "engine/serving_system.hpp"
#include "hw/topology.hpp"
#include "transfer/kv_transfer.hpp"
#include "transfer/migration.hpp"

namespace windserve::core {

/** Full configuration of a WindServe deployment (one pod's worth). */
struct WindServeConfig {
    model::ModelSpec model = model::ModelSpec::opt_13b();
    hw::TopologyConfig topology;
    model::ParallelismConfig prefill_parallelism{2, 1};
    model::ParallelismConfig decode_parallelism{2, 1};
    model::CostModelParams cost_params;

    CoordinatorConfig coordinator;
    transfer::KvTransferConfig transfer{
        transfer::TransferPolicy::Overlapped, 0.05, 0.25, ""};
    transfer::MigrationConfig migration;
    transfer::BackupManager::Config backup;

    /** SLOs drive the assist budget and (by default) `thrd`. */
    double ttft_slo = 0.25;
    double tpot_slo = 0.10;

    std::size_t block_size = 16;
    std::size_t max_batch_size = 256;
    std::size_t max_prefill_tokens = 4096;
    std::size_t chunk_size = 512;
    /** Chunk size the prefill instance uses while hosting migrated
     *  decodes (large = keep prefill throughput). */
    std::size_t prefill_chunk_size = 2048;
    /** Fraction of decode KV capacity reserved from dispatch. */
    double dispatch_reserve_fraction = 0.06;

    /** Stream-based disaggregation on the decode instance (§3.4). */
    bool enable_sbd = true;

    /** Preempt to host memory on KV exhaustion (park when disabled). */
    bool swap_enabled = true;
    /** Host DRAM budget per instance's swap pool. */
    double host_memory_bytes = 256e9;
    /** Override the derived per-instance KV capacity (tokens); 0 keeps
     *  the cost-model value. For tests and capacity studies. */
    std::size_t kv_capacity_tokens_override = 0;

    double exec_noise_sigma = 0.03;
    std::uint64_t seed = 7;
};

/** See file comment. */
class WindServeSystem : public engine::ServingSystem
{
  public:
    explicit WindServeSystem(WindServeConfig cfg);

    std::string name() const override { return "WindServe"; }
    std::size_t num_gpus() const override;

    // introspection for tests and ablation studies
    engine::Instance &prefill_instance() { return pod_->prefill_instance(); }
    engine::Instance &decode_instance() { return pod_->decode_instance(); }
    GlobalScheduler &scheduler() { return pod_->scheduler(); }
    transfer::MigrationManager &migration() { return pod_->migration(); }
    transfer::BackupManager &backup() { return pod_->backup(); }
    Pod &pod() { return *pod_; }
    sim::Simulator &simulator() override { return sim_; }
    const WindServeConfig &config() const { return cfg_; }

  protected:
    void replay(const std::vector<workload::Request> &trace,
                double horizon) override;
    void fill_system_metrics(metrics::RunMetrics &m) override;
    void wire_trace(obs::TraceRecorder &rec) override;
    void wire_audit(audit::SimAuditor &a) override;
    void wire_faults(fault::FaultInjector &inj) override;
    void wire_telemetry(obs::Telemetry &t) override;
    std::vector<workload::Request> take_requests() override
    {
        return std::move(requests_);
    }

  private:
    WindServeConfig cfg_;
    sim::Simulator sim_;
    std::unique_ptr<Pod> pod_;
    std::vector<workload::Request> requests_;
    std::size_t outstanding_ = 0;
};

} // namespace windserve::core
