/**
 * @file
 * Stall-free Dynamic Rescheduling (paper §3.3, Fig. 6) and KV backup.
 *
 * When the decode instance's KV blocks near exhaustion, WindServe
 * migrates long-context requests to the prefill instance. The transfer
 * runs while the request KEEPS DECODING at the source — newly generated
 * KV is appended to the in-flight copy — and the request only pauses
 * once the untransferred remainder falls below a threshold. After the
 * tail flushes, decoding resumes on the prefill instance (which then
 * serves its own prefills in chunked mode to bound interference).
 *
 * BackupManager implements the complementary optimisation: while the
 * prefill instance has spare KV blocks and the decode instance is
 * filling up, it proactively copies long requests' KV prefixes so a
 * later migration only ships the delta.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "engine/instance.hpp"
#include "kvcache/backup_registry.hpp"
#include "transfer/kv_transfer.hpp"

namespace windserve::transfer {

/** Tunables of the migration machinery. */
struct MigrationConfig {
    /** Pause the request when fewer KV tokens than this remain to send. */
    std::size_t pause_threshold_tokens = 64;
    /**
     * Stall-free on/off. When off the request pauses immediately at
     * migration start (blocking migration, for the ablation).
     */
    bool stall_free = true;
    /** Extra blocks of headroom required at the target before starting. */
    std::size_t target_headroom_tokens = 256;
};

/**
 * Orchestrates stall-free request migrations from a decode instance to
 * a prefill instance.
 */
class MigrationManager
{
  public:
    /**
     * @param sim     simulation kernel
     * @param xfer    transfer manager whose reverse channel we ride
     * @param source  the overloaded decode instance
     * @param target  the prefill instance that will continue decoding
     * @param backups registry of prefix KV already present at the target
     */
    MigrationManager(sim::Simulator &sim, KvTransferManager &xfer,
                     engine::Instance &source, engine::Instance &target,
                     kvcache::BackupRegistry &backups,
                     MigrationConfig cfg = {});

    /** Fires when a request is ready to decode at the target. */
    std::function<void(workload::Request *)> on_migrated;

    /**
     * Begin migrating @p r. @return false if the target cannot hold its
     * context (no state is changed in that case).
     */
    bool start(workload::Request *r);

    /**
     * Progress hook — call after every source decode iteration. Appends
     * freshly generated KV to in-flight copies and pauses requests whose
     * remainder dropped below the threshold.
     */
    void on_source_step();

    /** Notify that @p r finished at the source mid-migration. */
    void on_request_finished(workload::Request *r);

    /**
     * Abandon every in-flight migration (the source instance crashed:
     * the KV being copied no longer exists). The copies' completions
     * are disowned; they count as aborted when they drain. @return the
     * affected requests, sorted by id — paused ones sit in no queue,
     * so the crash victim sweep cannot see them.
     */
    std::vector<workload::Request *> cancel_active();

    /**
     * The target (prefill) instance crashed: every partial copy landed
     * in HBM that no longer exists. Abort all in-flight migrations NOW
     * — waiting for the wire to drain could race a repair and finalize
     * phantom KV — and resume paused requests at the source, whose KV
     * is intact. Requests still decoding stall-free just keep going.
     */
    void on_target_crash();

    bool is_migrating(const workload::Request *r) const;
    std::size_t active() const { return active_.size(); }
    std::uint64_t completed() const { return completed_; }
    std::uint64_t aborted() const { return aborted_; }

    const MigrationConfig &config() const { return cfg_; }

    /** Record one span per migration (start -> complete/abort). */
    void set_trace(obs::TraceRecorder *rec) { trace_ = rec; }

    /** Route the Migrating/abort state transitions through @p a. */
    void set_audit(audit::SimAuditor *a) { audit_ = a; }

  private:
    struct Migration {
        workload::Request *req;
        hw::TransferId transfer;
        std::size_t synced_tokens; ///< context tokens submitted so far
        bool paused;
        bool cancelled;
        double started; ///< sim time start() ran (trace span origin)
    };

    void complete(workload::RequestId id);
    void pause(Migration &m);

    sim::Simulator &sim_;
    KvTransferManager &xfer_;
    engine::Instance &source_;
    engine::Instance &target_;
    kvcache::BackupRegistry &backups_;
    MigrationConfig cfg_;
    std::unordered_map<workload::RequestId, Migration> active_;
    std::uint64_t completed_ = 0;
    std::uint64_t aborted_ = 0;
    obs::TraceRecorder *trace_ = nullptr;
    audit::SimAuditor *audit_ = nullptr;
};

/** Proactive KV prefix backups (decode -> prefill). */
class BackupManager
{
  public:
    /** Thresholds controlling when backups run. */
    struct Config {
        /** Start backing up when decode occupancy exceeds this. */
        double source_occupancy_trigger = 0.60;
        /** Only while prefill occupancy stays below this. */
        double target_occupancy_limit = 0.50;
        /** Cap on concurrent backup copies. */
        std::size_t max_inflight = 2;
        /** Only requests at least this long are worth backing up. */
        std::size_t min_context_tokens = 512;
    };

    BackupManager(sim::Simulator &sim, KvTransferManager &xfer,
                  engine::Instance &source, engine::Instance &target,
                  kvcache::BackupRegistry &registry, Config cfg);

    /** Policy tick — call from the coordinator's step hook. */
    void maybe_backup();

    /**
     * Switch to proactive checkpointing for a chaos-armed run: back up
     * continuously instead of only under memory pressure, with more
     * concurrent copies and a lower size floor. A deployment expecting
     * crashes pays reverse-channel bandwidth up front so victims can
     * resume from the prefill-side copy instead of recomputing. Only
     * ever called from wire_faults(): fault-free runs keep the
     * pressure-triggered policy bit for bit.
     */
    void fault_tolerance_mode();

    /** Record one span per backup copy. */
    void set_trace(obs::TraceRecorder *rec) { trace_ = rec; }

    /** Release target-side blocks when a request completes or migrates. */
    void on_request_done(workload::Request *r);

    /**
     * The decode (source) instance crashed: in-flight copies read from
     * KV that no longer exists. Their completions are disowned and the
     * target blocks reserved for them returned. Completed backups stay
     * — they are exactly what makes the victims' recovery cheap.
     */
    void on_source_crash();

    /**
     * The prefill (target) instance crashed: its blocks — including
     * every backup copy — were already freed by Instance::crash();
     * disown in-flight completions so they do not re-touch them. The
     * caller clears the BackupRegistry.
     */
    void on_target_crash();

    std::uint64_t backups_taken() const { return backups_taken_; }
    std::size_t inflight() const { return inflight_.size(); }

  private:
    sim::Simulator &sim_;
    KvTransferManager &xfer_;
    engine::Instance &source_;
    engine::Instance &target_;
    kvcache::BackupRegistry &registry_;
    Config cfg_;
    std::unordered_map<workload::RequestId, std::size_t> inflight_;
    /** Bumped on either side's crash; stale copy completions compare
     *  against it and drop out. */
    std::uint64_t generation_ = 0;
    std::uint64_t backups_taken_ = 0;
    obs::TraceRecorder *trace_ = nullptr;
};

} // namespace windserve::transfer
