/**
 * @file
 * Prefill -> decode KV-cache transfer policies.
 *
 * DistServe transfers a request's KV after its prefill completes; on
 * PCIe-class interconnects this serialises a ~tens-of-ms copy into the
 * request's critical path (the paper's §2.2 example: ~65 ms for a full
 * 2048-token OPT-13B context over PCIe Gen4).
 *
 * WindServe instead streams KV layer-by-layer *during* the prefill pass
 * ("mitigates the inherent KV cache transfer overhead by overlapping
 * transfers with prefill computations", §3), leaving only the last
 * layer's tail on the critical path. Both policies are provided.
 */
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "hw/transfer_engine.hpp"
#include "model/model_spec.hpp"
#include "workload/request.hpp"

namespace windserve::obs {
class TraceRecorder;
}
namespace windserve::fault {
class FaultInjector;
}

namespace windserve::transfer {

/** How prefill KV reaches the decode instance. */
enum class TransferPolicy {
    Synchronous, ///< after prefill, full copy on the critical path
    Overlapped,  ///< streamed during prefill; only the tail remains
};

/** Configuration of the transfer path between an instance pair. */
struct KvTransferConfig {
    TransferPolicy policy = TransferPolicy::Synchronous;
    /**
     * Fraction of the KV copy left after the prefill pass when
     * overlapping (the last pipeline layer's share; 1/num_layers would
     * be exact, a small constant is robust across models).
     */
    double overlap_tail_fraction = 0.05;
    /**
     * Bandwidth of the host-staged fallback path relative to the direct
     * link (GPU -> host DRAM -> GPU bounce when the direct path times
     * out under fault injection).
     */
    double staged_bandwidth_factor = 0.25;
    /**
     * Prefix for the three channel names ("kv/p2d" etc.). The auditor
     * keys its transfer ledgers by channel name, so multi-pod systems
     * must give each pod's transfer manager a unique prefix (e.g.
     * "pod3/"). The default empty prefix keeps the historical names.
     */
    std::string name_prefix;
};

/**
 * Moves prefill KV between a prefill/decode instance pair. Owns one
 * channel per direction of the inter-instance link (NVLink and PCIe are
 * full duplex, so prefill KV pushes do not contend with migration
 * traffic flowing the other way).
 */
class KvTransferManager
{
  public:
    KvTransferManager(sim::Simulator &sim, hw::Link link,
                      const model::ModelSpec &model, KvTransferConfig cfg);

    /**
     * Ship @p r 's prompt KV to the decode side; @p done fires when the
     * decode instance may admit the request.
     */
    void transfer_prefill_kv(workload::Request *r, std::function<void()> done);

    /** Channel carrying decode -> prefill traffic (migrations, backups). */
    hw::Channel &reverse_channel() { return d2p_; }

    /** Channel carrying prefill -> decode traffic. */
    hw::Channel &forward_channel() { return p2d_; }

    /** Host-staged fallback path (outage-immune, slower). */
    hw::Channel &staged_channel() { return staged_; }

    /** KV bytes for @p tokens tokens of this model. */
    double bytes_for_tokens(double tokens) const;

    /** Record occupancy spans of both link directions on @p rec. */
    void set_trace(obs::TraceRecorder *rec);

    /** Audit both link directions and the Transferring transition. */
    void set_audit(audit::SimAuditor *a);

    /**
     * Arm the transfer watchdog: when @p inj 's recovery policy sets a
     * transfer timeout, a prefill-KV copy that has not landed by then
     * is re-issued over the host-staged path (the direct copy is
     * disowned — its completion is ignored). nullptr (the default)
     * disables the watchdog with zero behavioural change.
     */
    void set_faults(fault::FaultInjector *inj) { faults_ = inj; }

    const KvTransferConfig &config() const { return cfg_; }

  private:
    sim::Simulator &sim_;
    KvTransferConfig cfg_;
    double kv_bytes_per_token_;
    hw::Channel p2d_;
    hw::Channel d2p_;
    hw::Channel staged_;
    audit::SimAuditor *audit_ = nullptr;
    fault::FaultInjector *faults_ = nullptr;
};

} // namespace windserve::transfer
