#include "transfer/kv_transfer.hpp"

#include <memory>
#include <utility>

#include "audit/sim_auditor.hpp"
#include "fault/fault_injector.hpp"

namespace windserve::transfer {

namespace {

hw::Link
staged_link(hw::Link link, double factor)
{
    link.bandwidth *= factor;
    return link;
}

} // namespace

KvTransferManager::KvTransferManager(sim::Simulator &sim, hw::Link link,
                                     const model::ModelSpec &model,
                                     KvTransferConfig cfg)
    : sim_(sim), cfg_(cfg), kv_bytes_per_token_(model.kv_bytes_per_token()),
      p2d_(sim, link, cfg.name_prefix + "kv/p2d"),
      d2p_(sim, link, cfg.name_prefix + "kv/d2p"),
      staged_(sim, staged_link(link, cfg.staged_bandwidth_factor),
              cfg.name_prefix + "kv/staged")
{}

double
KvTransferManager::bytes_for_tokens(double tokens) const
{
    return tokens * kv_bytes_per_token_;
}

void
KvTransferManager::set_trace(obs::TraceRecorder *rec)
{
    p2d_.set_trace(rec, "interconnect", cfg_.name_prefix + "kv-p2d");
    d2p_.set_trace(rec, "interconnect", cfg_.name_prefix + "kv-d2p");
    staged_.set_trace(rec, "interconnect", cfg_.name_prefix + "kv-staged");
}

void
KvTransferManager::set_audit(audit::SimAuditor *a)
{
    audit_ = a;
    p2d_.set_audit(a);
    d2p_.set_audit(a);
    staged_.set_audit(a);
}

void
KvTransferManager::transfer_prefill_kv(workload::Request *r,
                                       std::function<void()> done)
{
    double bytes = bytes_for_tokens(static_cast<double>(r->prompt_tokens));
    if (cfg_.policy == TransferPolicy::Overlapped)
        bytes *= cfg_.overlap_tail_fraction;
    audit::transition(audit_, *r, workload::RequestState::Transferring);

    double timeout =
        faults_ ? faults_->policy().transfer_timeout : 0.0;
    if (timeout <= 0.0) {
        p2d_.submit(bytes, [this, r, done = std::move(done)] {
            r->transfer_done_time = sim_.now();
            done();
        });
        return;
    }
    // Watchdog race: whichever of {direct completion, timeout} fires
    // first claims the transfer; the loser sees the flag and no-ops.
    // The staged path is a GPU->host->GPU bounce, immune to direct-link
    // outages (it is never registered as an outage target), so exactly
    // one completion reaches the caller.
    auto settled = std::make_shared<bool>(false);
    auto finish = std::make_shared<std::function<void()>>(std::move(done));
    p2d_.submit(bytes, [this, r, settled, finish] {
        if (*settled)
            return; // timed out; the staged copy owns this request now
        *settled = true;
        r->transfer_done_time = sim_.now();
        (*finish)();
    });
    sim::SourceScope src(sim_, "transfer/watchdog");
    sim_.schedule(timeout, [this, r, bytes, settled, finish] {
        if (*settled)
            return; // direct copy landed in time
        *settled = true;
        faults_->count_transfer_timeout();
        staged_.submit(bytes, [this, r, finish] {
            r->transfer_done_time = sim_.now();
            (*finish)();
        });
    });
}

} // namespace windserve::transfer
