#include "transfer/kv_transfer.hpp"

#include "audit/sim_auditor.hpp"

namespace windserve::transfer {

KvTransferManager::KvTransferManager(sim::Simulator &sim, hw::Link link,
                                     const model::ModelSpec &model,
                                     KvTransferConfig cfg)
    : sim_(sim), cfg_(cfg), kv_bytes_per_token_(model.kv_bytes_per_token()),
      p2d_(sim, link, "kv/p2d"), d2p_(sim, link, "kv/d2p")
{}

double
KvTransferManager::bytes_for_tokens(double tokens) const
{
    return tokens * kv_bytes_per_token_;
}

void
KvTransferManager::set_trace(obs::TraceRecorder *rec)
{
    p2d_.set_trace(rec, "interconnect", "kv-p2d");
    d2p_.set_trace(rec, "interconnect", "kv-d2p");
}

void
KvTransferManager::set_audit(audit::SimAuditor *a)
{
    audit_ = a;
    p2d_.set_audit(a);
    d2p_.set_audit(a);
}

void
KvTransferManager::transfer_prefill_kv(workload::Request *r,
                                       std::function<void()> done)
{
    double bytes = bytes_for_tokens(static_cast<double>(r->prompt_tokens));
    if (cfg_.policy == TransferPolicy::Overlapped)
        bytes *= cfg_.overlap_tail_fraction;
    audit::transition(audit_, *r, workload::RequestState::Transferring);
    p2d_.submit(bytes, [this, r, done = std::move(done)] {
        r->transfer_done_time = sim_.now();
        done();
    });
}

} // namespace windserve::transfer
