#include "transfer/migration.hpp"

#include <algorithm>

#include "audit/sim_auditor.hpp"
#include "obs/trace_recorder.hpp"
#include "simcore/log.hpp"

namespace windserve::transfer {

using workload::Request;
using workload::RequestState;

MigrationManager::MigrationManager(sim::Simulator &sim,
                                   KvTransferManager &xfer,
                                   engine::Instance &source,
                                   engine::Instance &target,
                                   kvcache::BackupRegistry &backups,
                                   MigrationConfig cfg)
    : sim_(sim), xfer_(xfer), source_(source), target_(target),
      backups_(backups), cfg_(cfg)
{}

bool
MigrationManager::is_migrating(const Request *r) const
{
    return active_.count(r->id) > 0;
}

bool
MigrationManager::start(Request *r)
{
    if (is_migrating(r) || r->finished())
        return false;
    if (source_.is_down() || target_.is_down())
        return false; // no endpoint to copy from/to until repair
    std::size_t ctx = r->context_length();
    std::size_t already_there = target_.blocks().holds(r->id)
                                    ? target_.blocks().tokens_of(r->id)
                                    : 0;
    std::size_t extra = ctx > already_there ? ctx - already_there : 0;
    if (!target_.blocks().can_allocate(extra + cfg_.target_headroom_tokens))
        return false;

    std::size_t backed = backups_.backed_up_tokens(r->id);
    std::size_t to_send = ctx > backed ? ctx - backed : 0;
    audit::transition(audit_, *r, RequestState::Migrating);
    workload::RequestId id = r->id;
    hw::TransferId tid = xfer_.reverse_channel().submit(
        xfer_.bytes_for_tokens(static_cast<double>(to_send)),
        [this, id] { complete(id); });
    Migration m{r, tid, ctx, false, false, sim_.now()};
    if (!cfg_.stall_free) {
        // Blocking migration (ablation): stop decoding right away.
        pause(m);
    }
    active_.emplace(id, m);
    WS_LOG_AT(Debug, "migration", sim_.now())
        << "start req " << id << " ctx " << ctx << " send " << to_send;
    return true;
}

void
MigrationManager::pause(Migration &m)
{
    if (m.paused)
        return;
    m.paused = true;
    source_.pause_decoding(m.req);
}

void
MigrationManager::on_source_step()
{
    std::vector<workload::RequestId> ids;
    ids.reserve(active_.size());
    for (const auto &[id, m] : active_)
        ids.push_back(id);
    for (auto id : ids) {
        auto it = active_.find(id);
        if (it == active_.end())
            continue;
        Migration &m = it->second;
        if (m.cancelled || m.paused)
            continue;
        std::size_t ctx = m.req->context_length();
        if (ctx > m.synced_tokens &&
            !xfer_.reverse_channel().is_done(m.transfer)) {
            xfer_.reverse_channel().append(
                m.transfer, xfer_.bytes_for_tokens(
                                static_cast<double>(ctx - m.synced_tokens)));
            m.synced_tokens = ctx;
        }
        double remaining = xfer_.reverse_channel().remaining_bytes(m.transfer);
        double threshold = xfer_.bytes_for_tokens(
            static_cast<double>(cfg_.pause_threshold_tokens));
        if (remaining <= threshold)
            pause(m);
    }
}

void
MigrationManager::on_request_finished(Request *r)
{
    auto it = active_.find(r->id);
    if (it != active_.end())
        it->second.cancelled = true;
}

std::vector<Request *>
MigrationManager::cancel_active()
{
    std::vector<Request *> out;
    for (auto &[id, m] : active_) {
        if (m.cancelled)
            continue;
        m.cancelled = true;
        out.push_back(m.req);
    }
    std::sort(out.begin(), out.end(),
              [](const Request *a, const Request *b) { return a->id < b->id; });
    return out;
}

void
MigrationManager::on_target_crash()
{
    std::vector<workload::RequestId> ids;
    ids.reserve(active_.size());
    for (const auto &[id, m] : active_)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (auto id : ids) {
        auto it = active_.find(id);
        Migration &m = it->second;
        Request *r = m.req;
        ++aborted_;
        if (trace_) {
            trace_->span(obs::Category::Transfer, "interconnect",
                         "migration", "migrate-abort", m.started,
                         sim_.now() - m.started,
                         {obs::num_arg("req", std::uint64_t(id))});
        }
        bool was_paused = m.paused;
        active_.erase(it);
        // The in-flight copy's completion finds no active entry and
        // no-ops when it drains.
        if (r->finished())
            continue;
        audit::transition(audit_, *r, RequestState::Decoding);
        if (was_paused)
            source_.enqueue_decode(r, /*kv_resident=*/true);
    }
}

void
MigrationManager::complete(workload::RequestId id)
{
    auto it = active_.find(id);
    if (it == active_.end())
        return;
    Migration &m = it->second;
    Request *r = m.req;

    if (m.cancelled || r->finished()) {
        ++aborted_;
        if (trace_) {
            trace_->span(obs::Category::Transfer, "interconnect",
                         "migration", "migrate-abort", m.started,
                         sim_.now() - m.started,
                         {obs::num_arg("req", std::uint64_t(id))});
        }
        active_.erase(it);
        return;
    }

    if (target_.is_down()) {
        // Target crashed mid-copy: the blocks we were filling are gone.
        // Abort and resume decoding at the source, whose KV is intact.
        pause(m);
        ++aborted_;
        if (trace_) {
            trace_->span(obs::Category::Transfer, "interconnect",
                         "migration", "migrate-abort", m.started,
                         sim_.now() - m.started,
                         {obs::num_arg("req", std::uint64_t(id))});
        }
        audit::transition(audit_, *r, RequestState::Decoding);
        active_.erase(it);
        source_.enqueue_decode(r, /*kv_resident=*/true);
        return;
    }

    // The request may still be decoding (the transfer drained faster
    // than the pause check ran): flush the tail with a follow-up copy.
    std::size_t ctx = r->context_length();
    if (!m.paused) {
        pause(m);
        // A token generated in the final in-flight iteration may still
        // land (complete_group increments after our pause); one block of
        // slack in the target allocation below covers it.
    }
    if (ctx > m.synced_tokens) {
        std::size_t delta = ctx - m.synced_tokens;
        m.synced_tokens = ctx;
        m.transfer = xfer_.reverse_channel().submit(
            xfer_.bytes_for_tokens(static_cast<double>(delta)),
            [this, id] { complete(id); });
        return;
    }

    // Finalize: move the allocation to the target.
    bool ok;
    if (target_.blocks().holds(id)) {
        ok = target_.blocks().grow(id, ctx);
    } else {
        ok = target_.blocks().allocate(id, ctx);
    }
    if (!ok) {
        // Target filled up meanwhile: abort, resume at the source.
        ++aborted_;
        if (trace_) {
            trace_->span(obs::Category::Transfer, "interconnect",
                         "migration", "migrate-abort", m.started,
                         sim_.now() - m.started,
                         {obs::num_arg("req", std::uint64_t(id)),
                          obs::num_arg("ctx", std::uint64_t(ctx))});
        }
        audit::transition(audit_, *r, RequestState::Decoding);
        active_.erase(it);
        source_.enqueue_decode(r, /*kv_resident=*/true);
        return;
    }
    if (trace_) {
        trace_->span(obs::Category::Transfer, "interconnect", "migration",
                     "migrate", m.started, sim_.now() - m.started,
                     {obs::num_arg("req", std::uint64_t(id)),
                      obs::num_arg("ctx", std::uint64_t(ctx))});
    }
    source_.release_kv(r);
    backups_.drop(id);
    ++r->migrations;
    ++completed_;
    active_.erase(it);
    WS_LOG_AT(Debug, "migration", sim_.now())
        << "complete req " << id << " ctx " << ctx;
    if (on_migrated)
        on_migrated(r);
}

// ---------------------------------------------------------------------

BackupManager::BackupManager(sim::Simulator &sim, KvTransferManager &xfer,
                             engine::Instance &source,
                             engine::Instance &target,
                             kvcache::BackupRegistry &registry, Config cfg)
    : sim_(sim), xfer_(xfer), source_(source), target_(target),
      registry_(registry), cfg_(cfg)
{}

void
BackupManager::fault_tolerance_mode()
{
    cfg_.source_occupancy_trigger = 0.0;
    cfg_.target_occupancy_limit = 0.60;
    cfg_.max_inflight = 4;
    cfg_.min_context_tokens = 256;
}

void
BackupManager::maybe_backup()
{
    if (source_.is_down() || target_.is_down())
        return;
    if (inflight_.size() >= cfg_.max_inflight)
        return;
    if (source_.blocks().occupancy() < cfg_.source_occupancy_trigger)
        return;
    if (target_.blocks().occupancy() > cfg_.target_occupancy_limit)
        return;

    // Longest running decode without a backup in flight or on record.
    Request *best = nullptr;
    for (const auto &grp : source_.groups()) {
        for (Request *r : grp.members) {
            if (r->state == RequestState::Migrating)
                continue;
            if (registry_.has_backup(r->id) || inflight_.count(r->id))
                continue;
            if (r->context_length() < cfg_.min_context_tokens)
                continue;
            if (!best || r->context_length() > best->context_length())
                best = r;
        }
    }
    if (!best)
        return;
    std::size_t ctx = best->context_length();
    if (!target_.blocks().can_allocate(ctx))
        return;
    target_.blocks().allocate(best->id, ctx);
    inflight_[best->id] = ctx;
    Request *r = best;
    double started = sim_.now();
    xfer_.reverse_channel().submit(
        xfer_.bytes_for_tokens(static_cast<double>(ctx)),
        [this, r, ctx, started, gen = generation_] {
            if (gen != generation_)
                return; // an endpoint crashed mid-copy; disowned
            inflight_.erase(r->id);
            if (trace_) {
                trace_->span(obs::Category::Transfer, "interconnect",
                             "backup", "kv-backup", started,
                             sim_.now() - started,
                             {obs::num_arg("req", std::uint64_t(r->id)),
                              obs::num_arg("ctx", std::uint64_t(ctx))});
            }
            if (r->finished()) {
                target_.blocks().release(r->id);
                return;
            }
            registry_.record(r->id, ctx);
            ++backups_taken_;
        });
}

void
BackupManager::on_source_crash()
{
    ++generation_;
    std::vector<workload::RequestId> ids;
    ids.reserve(inflight_.size());
    for (const auto &[id, ctx] : inflight_)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (auto id : ids)
        target_.blocks().release(id);
    inflight_.clear();
}

void
BackupManager::on_target_crash()
{
    ++generation_;
    inflight_.clear();
}

void
BackupManager::on_request_done(workload::Request *r)
{
    // Release target-side blocks held purely as a backup. If the request
    // migrated, the migration manager already took ownership and dropped
    // the registry entry.
    if (registry_.has_backup(r->id)) {
        registry_.drop(r->id);
        if (target_.blocks().holds(r->id) && !target_.is_decoding(r))
            target_.blocks().release(r->id);
    }
}

} // namespace windserve::transfer
