/**
 * @file
 * Plain-text table / CSV emitters for the benchmark binaries.
 */
#pragma once

#include <string>
#include <vector>

namespace windserve::harness {

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Add a data row (must match the header width). */
    void add_row(std::vector<std::string> row);

    /** Render with aligned columns. */
    std::string render() const;

    /** Render as CSV. */
    std::string csv() const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style float formatting helper for table cells. */
std::string cell(double v, int precision = 3);

} // namespace windserve::harness
