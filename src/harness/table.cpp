#include "harness/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace windserve::harness {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{}

void
TextTable::add_row(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        throw std::invalid_argument("TextTable: row width mismatch");
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c]
                << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << "\n";
    };
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    out << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

std::string
TextTable::csv() const
{
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            out << row[c] << (c + 1 < row.size() ? "," : "");
        out << "\n";
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

std::string
cell(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace windserve::harness
