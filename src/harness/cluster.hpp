/**
 * @file
 * Multi-replica deployments and front-end load balancing.
 *
 * The paper evaluates one prefill/decode instance pair and scales load
 * by the *linear scaling rule* (per-GPU request rate, §2.2); §7 lists
 * "load balancing across instances" as future work for large-scale
 * deployment. This module provides that layer: a cluster of N
 * independent PD replica pairs with a front-end router that assigns
 * each request on arrival.
 *
 * Replicas do not share GPUs, queues, or KV — the only coupling is the
 * routing decision — so each replica simulates on its own kernel and
 * the per-request results merge exactly.
 */
#pragma once

#include <memory>
#include <vector>

#include "harness/experiment.hpp"

namespace windserve::harness {

/** Front-end routing policies. */
enum class RoutePolicy {
    RoundRobin,        ///< classic stateless rotation
    LeastPendingTokens ///< token-aware: fewest outstanding prompt+output
                       ///< tokens among requests routed so far
};

const char *to_string(RoutePolicy p);

/** Configuration of a replicated deployment. */
struct ClusterConfig {
    /** Per-replica experiment template (system, scenario, seed...).
     *  per_gpu_rate applies to the WHOLE cluster: the generated trace
     *  targets per_gpu_rate * num_replicas * replica GPUs. */
    ExperimentConfig replica;
    std::size_t num_replicas = 2;
    RoutePolicy policy = RoutePolicy::RoundRobin;
    /** Worker threads for replica simulation (1 = sequential). */
    std::size_t jobs = 1;
};

/** Merged outcome of a cluster run. */
struct ClusterResult {
    metrics::RunMetrics metrics;          ///< merged across replicas
    std::vector<ExperimentResult> per_replica;
    /** Requests routed to each replica. */
    std::vector<std::size_t> assigned;
};

/**
 * Split @p trace across replicas according to @p policy. Arrival order
 * is preserved within each shard. @return shard index per request.
 */
std::vector<std::size_t> route_trace(const std::vector<workload::Request> &trace,
                                     std::size_t num_replicas,
                                     RoutePolicy policy);

/** Run the full cluster: generate, route, simulate replicas, merge. */
ClusterResult run_cluster(const ClusterConfig &cfg);

} // namespace windserve::harness
