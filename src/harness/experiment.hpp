/**
 * @file
 * Single-experiment runner: build a serving system for a scenario,
 * replay a trace at a given per-GPU rate, and collect metrics.
 */
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "baselines/distserve_system.hpp"
#include "baselines/vllm_system.hpp"
#include "core/cluster_system.hpp"
#include "core/windserve_system.hpp"
#include "fault/fault_plan.hpp"
#include "harness/configs.hpp"
#include "metrics/collector.hpp"
#include "workload/trace.hpp"

namespace windserve::harness {

/** Which serving system to instantiate. */
enum class SystemKind {
    WindServe,
    DistServe,
    Vllm,
    WindServeNoSplit,  ///< ablation: no stream-based disaggregation
    WindServeNoResche, ///< ablation: no dynamic rescheduling
    WindServeNoDispatch, ///< extra ablation: no dynamic prefill dispatch
};

const char *to_string(SystemKind k);

/** One experiment = (scenario, system, rate, trace size, seed). */
struct ExperimentConfig {
    Scenario scenario = Scenario::opt13b_sharegpt();
    SystemKind system = SystemKind::WindServe;
    /** Per-GPU request rate (the paper's linear scaling rule, §2.2). */
    double per_gpu_rate = 1.0;
    std::size_t num_requests = 2500;
    std::uint64_t seed = 42;
    double horizon = 7200.0;
    /** Optional dispatch-threshold override (Fig. 5 sweep). */
    std::optional<double> thrd;
    /** Stall-free migration on (off = blocking-migration ablation). */
    bool stall_free = true;
    /** Optional KV-transfer policy override (Overlapped by default for
     *  WindServe; Synchronous reproduces DistServe's blocking copy). */
    std::optional<transfer::TransferPolicy> transfer_policy;
    /** Proactive KV backups (off = backup ablation). */
    bool enable_backup = true;
    /**
     * Attach a per-run obs::TraceRecorder and export the Chrome-trace
     * JSON / lifecycle CSV into the result. Off by default: the traced
     * run's scheduling is identical, only the exports are added.
     */
    bool record_trace = false;
    /**
     * Attach a fail-fast audit::SimAuditor that checks simulation
     * invariants (KV conservation, lifecycle legality, link capacity,
     * end-of-run accounting) at every event. Violations throw
     * audit::InvariantViolation carrying the replayable seed. Off by
     * default: an audited run's results are identical to an unaudited
     * one.
     */
    bool audit = false;
    /**
     * Attach a fault::FaultInjector with this chaos schedule. Empty
     * (the default) runs fault-free; a config with horizon <= 0 takes
     * the experiment's horizon. The schedule is a pure function of the
     * config, so two runs with the same ExperimentConfig see identical
     * faults.
     */
    std::optional<fault::FaultConfig> faults;
    /**
     * Attach per-run obs::Telemetry and export its Prometheus text,
     * metrics CSV, decision-journal CSV/JSON and self-profiler table
     * into the result. Empty (the default) runs untelemetered; an
     * instrumented run's scheduling and results are identical.
     */
    std::optional<obs::TelemetryConfig> telemetry;
    /** KV capacity override for every instance (tokens; 0 = derived).
     *  Lets tests and the fuzzer force memory pressure. */
    std::size_t kv_capacity_tokens_override = 0;
    /** Host DRAM budget per swap pool. */
    double host_memory_bytes = 256e9;
    /** Swap to host on KV exhaustion (park-in-queue when disabled). */
    bool swap_enabled = true;
    /**
     * Cluster shape. The scenario describes ONE pod; the experiment
     * replicates it over `num_nodes * pods_per_node` pods and scales
     * the arrival rate by the same factor (the paper's linear rule).
     * For the WindServe family >1 pod (or `sharded`) selects the
     * sharded ClusterServeSystem; DistServe replicates PD pairs; vLLM
     * multiplies its engine count. The 1/1 default is byte-identical
     * to the historical single-node harness.
     */
    std::size_t num_nodes = 1;
    std::size_t pods_per_node = 1;
    /** Force the sharded cluster path even for a 1-node/1-pod run
     *  (sequential-vs-sharded differential testing). */
    bool sharded = false;
    /** Cluster decode-offload watermark overrides (ClusterConfig
     *  defaults when empty). Benches and tests lower these to make the
     *  cross-pod offload path fire under moderate load. */
    std::optional<double> offload_highwater;
    std::optional<double> offload_lowwater;
    /**
     * Intra-run worker threads (engine::RunOptions::intra_threads).
     * Only the multi-pod cluster engine uses them; results are
     * byte-identical at any value, so this is purely a wall-clock
     * knob — and the determinism harness's sweep axis.
     */
    std::size_t intra_threads = 1;
    /**
     * Scheduler replicas for the replicated control plane. 1 (the
     * default) keeps the historical immortal-coordinator path,
     * byte-identical to pre-control-plane runs; >= 2 routes every
     * externally visible decision through the Raft-shaped log (the
     * WindServe family only — baselines ignore it).
     */
    std::size_t ctrl_replicas = 1;
    /** Per-node-pair fabric overrides (bench_scale's oversubscribed
     *  spine). Empty keeps the uniform NIC fabric. */
    std::vector<hw::InterNodeLink> inter_node_links;
};

/** Outcome of one experiment. */
struct ExperimentResult {
    std::string system_name;
    double per_gpu_rate = 0.0;
    metrics::RunMetrics metrics;
    /** Events fired across every simulator of the run (hub + logical
     *  processes) — thread-count invariant by the engine's contract. */
    std::uint64_t events_fired = 0;
    // system-internal counters
    std::uint64_t dispatches = 0;
    std::uint64_t reschedules = 0;
    std::uint64_t migrations_completed = 0;
    std::uint64_t backups = 0;
    std::uint64_t decode_swap_outs = 0;
    // trace exports (record_trace only; empty otherwise)
    std::string trace_json;        ///< Chrome trace-event document
    std::string trace_request_csv; ///< per-request lifecycle table
    std::size_t trace_events = 0;  ///< events recorded
    // audit outcome (audit only; zero otherwise)
    std::uint64_t audit_events = 0;     ///< invariant checks performed
    std::uint64_t audit_violations = 0; ///< violations recorded
    // telemetry exports (telemetry only; empty otherwise). All are
    // deterministic byte-for-byte at any --jobs N.
    std::string metrics_prometheus; ///< Prometheus exposition text
    std::string metrics_csv;        ///< sampled time series, long form
    std::string journal_csv;        ///< scheduler decision journal
    std::string journal_json;       ///< same journal as JSON
    std::string profile_table;      ///< self-profiler (counts only)
    std::size_t metric_samples = 0; ///< sample ticks taken
    std::size_t metric_families = 0;
    std::size_t journal_decisions = 0;
    double profiled_attribution = 0.0; ///< fraction of events with a
                                       ///< named source
};

/** Build the serving system an ExperimentConfig describes. */
std::unique_ptr<engine::ServingSystem>
make_system(const ExperimentConfig &cfg);

/** Build the workload trace an ExperimentConfig describes. */
std::vector<workload::Request> make_trace(const ExperimentConfig &cfg);

/** Run one experiment end to end. */
ExperimentResult run_experiment(const ExperimentConfig &cfg);

} // namespace windserve::harness
