/**
 * @file
 * Evaluation scenarios — the paper's Tables 2, 3 and 4 in code.
 *
 * A Scenario bundles model, dataset, SLOs and instance placements:
 *
 *   OPT-13B    ShareGPT  [TP-2,PP-1 | TP-2,PP-1]  TTFT 0.25s TPOT 0.10s
 *   OPT-66B    ShareGPT  [TP-2,PP-2 | TP-2,PP-2]  TTFT 0.80s TPOT 0.15s
 *   LLaMA2-13B LongBench [TP-2,PP-1 | TP-2,PP-1]  TTFT 4s    TPOT 0.10s
 *   LLaMA2-70B LongBench [TP-2,PP-2 | TP-2,PP-2]  TTFT 15s   TPOT 0.50s
 *
 * The vLLM baseline replicates engines of the same parallelism over the
 * same GPU count (its "recommended placement" in the paper's setup).
 */
#pragma once

#include <string>

#include "hw/topology.hpp"
#include "metrics/slo.hpp"
#include "model/model_spec.hpp"
#include "model/parallelism.hpp"
#include "workload/dataset.hpp"

namespace windserve::harness {

/** One (model, dataset, SLO, placement) evaluation setting. */
struct Scenario {
    std::string name;
    model::ModelSpec model;
    workload::DatasetConfig dataset;
    metrics::SloSpec slo;
    model::ParallelismConfig prefill_parallelism;
    model::ParallelismConfig decode_parallelism;
    hw::TopologyConfig topology;

    /** GPUs a PD deployment of this scenario occupies. */
    std::size_t num_gpus() const
    {
        return prefill_parallelism.num_gpus() +
               decode_parallelism.num_gpus();
    }

    /** Table 3/4 rows. */
    static Scenario opt13b_sharegpt();
    static Scenario opt66b_sharegpt();
    static Scenario llama2_13b_longbench();
    static Scenario llama2_70b_longbench();

    /** Fig. 3 / Fig. 12 left: decode instance shrunk to one GPU. */
    static Scenario opt13b_sharegpt_small_decode();
};

} // namespace windserve::harness
