/**
 * @file
 * Request-rate sweeps across systems — the x-axis of Figs. 1, 10, 11.
 */
#pragma once

#include <functional>
#include <vector>

#include "harness/experiment.hpp"

namespace windserve::harness {

/** A grid of (system, per-GPU rate) experiments over one scenario. */
struct SweepConfig {
    Scenario scenario = Scenario::opt13b_sharegpt();
    std::vector<SystemKind> systems{SystemKind::WindServe,
                                    SystemKind::DistServe,
                                    SystemKind::Vllm};
    std::vector<double> per_gpu_rates{1.0, 2.0, 3.0, 4.0, 5.0};
    std::size_t num_requests = 2500;
    std::uint64_t seed = 42;
    double horizon = 7200.0;
};

/** Results grouped by system, in rate order. */
struct SweepResult {
    SweepConfig config;
    /** results[i][j]: systems[i] at per_gpu_rates[j]. */
    std::vector<std::vector<ExperimentResult>> results;
};

/**
 * Run the full grid. @p progress (optional) is invoked after each cell
 * with the finished result.
 */
SweepResult run_sweep(
    const SweepConfig &cfg,
    const std::function<void(const ExperimentResult &)> &progress = {});

} // namespace windserve::harness
