/**
 * @file
 * Request-rate sweeps across systems — the x-axis of Figs. 1, 10, 11.
 *
 * A sweep is a grid of independent (system, per-GPU rate) experiment
 * cells over one scenario. Cells execute on the parallel engine
 * (harness/parallel.hpp): each cell derives its own RNG stream from
 * (seed, system, rate), so the grid's results are bit-identical
 * regardless of worker-thread count or completion order, and progress
 * is reported in cell order even when cells finish out of order.
 *
 * Preferred API (fluent builder):
 *
 *   auto sweep = SweepBuilder()
 *                    .scenario(Scenario::opt13b_sharegpt())
 *                    .rates({2.0, 3.0, 4.0})
 *                    .num_requests(2500)
 *                    .jobs(4)
 *                    .on_progress([](std::size_t k, std::size_t total,
 *                                    const ExperimentResult &r) { ... })
 *                    .run();
 */
#pragma once

#include <functional>
#include <vector>

#include "harness/experiment.hpp"

namespace windserve::harness {

/** A grid of (system, per-GPU rate) experiments over one scenario. */
struct SweepConfig {
    Scenario scenario = Scenario::opt13b_sharegpt();
    std::vector<SystemKind> systems{SystemKind::WindServe,
                                    SystemKind::DistServe,
                                    SystemKind::Vllm};
    std::vector<double> per_gpu_rates{1.0, 2.0, 3.0, 4.0, 5.0};
    std::size_t num_requests = 2500;
    std::uint64_t seed = 42;
    double horizon = 7200.0;
    /** Worker threads for the grid (1 = sequential). */
    std::size_t jobs = 1;
};

/** Results grouped by system, in rate order. */
struct SweepResult {
    SweepConfig config;
    /** results[i][j]: systems[i] at per_gpu_rates[j]. */
    std::vector<std::vector<ExperimentResult>> results;
};

/**
 * Progress callback: (cell_index, total_cells, finished result).
 * Cells are numbered system-major (i * num_rates + j) and ALWAYS
 * reported in index order, at every thread count.
 */
using SweepProgress = std::function<void(
    std::size_t cell_index, std::size_t total_cells,
    const ExperimentResult &result)>;

/**
 * Derive the independent RNG stream of one grid cell from the sweep
 * seed and the cell's coordinates (splitmix64 mixing). Cells therefore
 * never share a generator state, and a cell's result depends only on
 * its own coordinates — the determinism contract of the parallel
 * engine.
 */
std::uint64_t derive_cell_seed(std::uint64_t base_seed, SystemKind system,
                               double per_gpu_rate);

/**
 * Run a flat list of independent experiment cells on @p jobs worker
 * threads. Results land in input order; @p progress fires in input
 * order. On a cell failure, unstarted cells are cancelled and the
 * first exception is rethrown.
 */
std::vector<ExperimentResult>
run_experiments(const std::vector<ExperimentConfig> &cells,
                std::size_t jobs = 1, const SweepProgress &progress = {});

/** Fluent construction of a sweep; run() executes the grid. */
class SweepBuilder
{
  public:
    SweepBuilder() = default;
    explicit SweepBuilder(SweepConfig cfg) : cfg_(std::move(cfg)) {}

    SweepBuilder &scenario(const Scenario &s);
    SweepBuilder &systems(std::vector<SystemKind> s);
    SweepBuilder &rates(std::vector<double> r);
    SweepBuilder &num_requests(std::size_t n);
    SweepBuilder &seed(std::uint64_t s);
    SweepBuilder &horizon(double h);
    SweepBuilder &jobs(std::size_t j);
    SweepBuilder &on_progress(SweepProgress fn);

    const SweepConfig &config() const { return cfg_; }

    /** Execute the grid and return results grouped [system][rate]. */
    SweepResult run() const;

  private:
    SweepConfig cfg_;
    SweepProgress progress_;
};

// The deprecated run_sweep() shim (pre-SweepBuilder API) has been
// removed; construct a SweepBuilder(cfg) and call run() instead.

} // namespace windserve::harness
