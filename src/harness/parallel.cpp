#include "harness/parallel.hpp"

#include <atomic>
#include <exception>
#include <thread>

namespace windserve::harness {

std::size_t
default_jobs()
{
    std::size_t n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

void
parallel_for(std::size_t count, std::size_t jobs,
             const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    if (jobs <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
    std::exception_ptr first_error;
    std::mutex error_mu;

    auto worker = [&] {
        for (;;) {
            if (cancelled.load(std::memory_order_relaxed))
                return;
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                body(i);
            } catch (...) {
                // First failure wins; unclaimed jobs are cancelled.
                std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error)
                    first_error = std::current_exception();
                cancelled.store(true, std::memory_order_relaxed);
            }
        }
    };

    std::vector<std::thread> pool;
    std::size_t workers = jobs < count ? jobs : count;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

OrderedReporter::OrderedReporter(std::size_t total,
                                 std::function<void(std::size_t)> deliver)
    : done_(total, false), deliver_(std::move(deliver))
{}

void
OrderedReporter::complete(std::size_t index)
{
    if (!deliver_)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    done_.at(index) = true;
    while (next_ < done_.size() && done_[next_]) {
        deliver_(next_);
        ++next_;
    }
}

std::size_t
OrderedReporter::delivered() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return next_;
}

} // namespace windserve::harness
