/**
 * @file
 * Deterministic parallel job execution for experiment grids.
 *
 * Every paper figure is a grid of INDEPENDENT simulations: each cell
 * owns its Simulator, Rng, instances and stats, and shares nothing
 * mutable with other cells (the log level, the only process-wide
 * state, is atomic). That makes cells embarrassingly parallel: this
 * module schedules them on a small fixed-size thread pool, with
 * results landing in pre-allocated slots so output order never depends
 * on completion order. Combined with per-cell RNG streams
 * (harness/sweep.hpp's derive_cell_seed), a grid's results are
 * bit-identical at any thread count.
 *
 * The same plumbing (index queue, result slots, cancellation on first
 * failure, in-order completion reporting) backs SweepBuilder::run(),
 * search_placements and the figure benchmark drivers.
 */
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

namespace windserve::harness {

/** Worker-thread count to use when the caller does not care: the
 *  machine's hardware concurrency (>= 1). */
std::size_t default_jobs();

/**
 * Run body(i) for every i in [0, count) on up to @p jobs worker
 * threads, blocking until all jobs finish. jobs <= 1 (or count <= 1)
 * executes inline on the calling thread with no pool at all, so the
 * sequential path stays exactly the old code path.
 *
 * Indices are claimed from an atomic counter in order, but bodies may
 * FINISH in any order — bodies must only write state owned by their
 * own index. If a body throws, the remaining unclaimed jobs are
 * cancelled and the first exception is rethrown on the calling thread
 * after all workers drain.
 */
void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)> &body);

/**
 * In-order delivery of out-of-order completions.
 *
 * Workers call complete(i) when slot i's result is fully written; the
 * deliver callback then fires for consecutive indices 0, 1, 2, ...
 * regardless of which thread finished first, so progress output reads
 * coherently and identically at every thread count. Delivery happens
 * under an internal mutex on whichever worker thread completed the
 * gating index; the mutex also sequences the slot write before the
 * matching deliver call.
 */
class OrderedReporter
{
  public:
    /** @p deliver may be empty, making complete() a cheap no-op path. */
    OrderedReporter(std::size_t total,
                    std::function<void(std::size_t)> deliver);

    /** Mark slot @p index done (thread-safe). */
    void complete(std::size_t index);

    /** Slots delivered so far (for tests; racy outside quiescence). */
    std::size_t delivered() const;

  private:
    mutable std::mutex mu_;
    std::vector<bool> done_;
    std::size_t next_ = 0;
    std::function<void(std::size_t)> deliver_;
};

} // namespace windserve::harness
