/**
 * @file
 * Property-based fuzzing of the serving systems under invariant audit.
 *
 * Each fuzz case is a randomized (workload, config) pair derived purely
 * from a 64-bit seed, replayed through one of the three systems with a
 * fail-fast audit::SimAuditor attached. Properties checked per case:
 *
 *  - zero invariant violations (the auditor throws otherwise, carrying
 *    the replayable `--repro-seed=S --repro-config=...` line);
 *  - determinism: the same seed produces bit-identical per-request
 *    results, summarised as an order-independent FNV checksum that the
 *    tests compare across repeat runs and across thread counts.
 *
 * Configs deliberately stress the memory machinery: small KV capacity
 * overrides force swap-outs and migrations, tiny host pools force the
 * pool-full parking path, and disabled swapping exercises the
 * park-in-queue fallback.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace windserve::harness {

/** Outcome of one audited fuzz case. */
struct FuzzResult {
    std::uint64_t seed = 0;
    std::string system_name;
    std::uint64_t audit_events = 0;     ///< invariant checks performed
    std::uint64_t audit_violations = 0; ///< 0 unless fail_fast was off
    std::size_t num_requests = 0;
    std::size_t finished = 0;
    std::size_t unfinished = 0;
    std::size_t aborted = 0;            ///< chaos mode: retry cap exceeded
    std::uint64_t generated_tokens = 0; ///< sum over all requests
    std::uint64_t checksum = 0;         ///< FNV over per-request results
};

/** Options of a fuzz campaign. */
struct FuzzOptions {
    /** Randomized cases per system. */
    std::size_t iterations = 70;
    /** Case i of a system uses seed base_seed + i. */
    std::uint64_t base_seed = 1;
    /** Worker threads (cases are independent; results are slot-ordered
     *  so the output is identical at any thread count). */
    std::size_t jobs = 1;
    /** Systems to sweep; defaults to all three. */
    std::vector<SystemKind> systems = {SystemKind::WindServe,
                                       SystemKind::DistServe,
                                       SystemKind::Vllm};
    /** Chaos mode: derive a fault schedule from each case seed and run
     *  it under full audit (crash edges enabled). */
    bool chaos = false;
    /** Cluster axis: replay every case on an N-node cluster (sharded
     *  WindServe pods, replicated baselines). 1 = the historical
     *  single-node campaign, byte-identical to the pre-cluster fuzzer.
     *  With chaos, N > 1 additionally draws node-crash and NIC-outage
     *  dials (strictly after all single-node draws). */
    std::size_t nodes = 1;
    /** Intra-run worker threads for multi-pod cases (nodes > 1,
     *  WindServe). A pure parameter — NO RNG draw is attached to it,
     *  so every historical `--repro-seed` line replays byte-identically
     *  and the same case can be replayed at different thread counts to
     *  diff the parallel engine against the sequential one. */
    std::size_t intra_threads = 1;
    /** Control replicas per WindServe case (pure parameter, no draw).
     *  1 keeps the historical immortal-coordinator campaign. */
    std::size_t replicas = 1;
    /** Control-plane chaos: derive leader-crash / control-partition
     *  dials for each case (drawn strictly after every existing axis,
     *  so the flag never perturbs a historical case). Meaningful with
     *  replicas >= 2. */
    bool ctrl_chaos = false;
};

/** Aggregated outcome of a campaign (all cases, in deterministic order). */
struct FuzzSummary {
    std::vector<FuzzResult> results;
    std::uint64_t total_events = 0;
    std::uint64_t total_violations = 0;
};

/**
 * Derive the randomized experiment config of fuzz case @p seed on
 * @p system. Pure function of its arguments. With @p chaos the config
 * additionally carries a seed-derived fault schedule; the chaos draws
 * come after every base draw, so a case's fault-free config is
 * untouched by the flag. @p nodes > 1 runs the case on a multi-node
 * cluster; its extra chaos draws come after every chaos draw, so the
 * node axis never perturbs a single-node case either. @p intra_threads
 * is copied into the config without any draw (see FuzzOptions).
 * @p replicas (pure parameter, no draw) runs WindServe cases under a
 * replicated control plane; @p ctrl_chaos adds leader-crash /
 * control-partition dials, drawn strictly after every other axis.
 */
ExperimentConfig make_fuzz_config(std::uint64_t seed, SystemKind system,
                                  bool chaos = false,
                                  std::size_t nodes = 1,
                                  std::size_t intra_threads = 1,
                                  std::size_t replicas = 1,
                                  bool ctrl_chaos = false);

/** Order-independent FNV-1a checksum of per-request outcomes. */
std::uint64_t result_checksum(const std::vector<workload::Request> &requests);

/**
 * Run one audited case. Throws audit::InvariantViolation (fail-fast)
 * if any invariant breaks; the exception message contains the repro
 * line.
 */
FuzzResult run_fuzz_case(const ExperimentConfig &cfg);

/** Convenience: run_fuzz_case(make_fuzz_config(seed, system)). */
FuzzResult run_fuzz_case(std::uint64_t seed, SystemKind system);

/**
 * Run a full campaign (iterations x systems cases). The first
 * violation cancels outstanding cases and rethrows on the calling
 * thread.
 */
FuzzSummary run_fuzz(const FuzzOptions &opt);

/** Parse "windserve"/"distserve"/"vllm" (any case, also the display
 *  names to_string emits). Throws std::invalid_argument otherwise. */
SystemKind parse_system_kind(const std::string &name);

} // namespace windserve::harness
