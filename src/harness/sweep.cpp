#include "harness/sweep.hpp"

namespace windserve::harness {

SweepResult
run_sweep(const SweepConfig &cfg,
          const std::function<void(const ExperimentResult &)> &progress)
{
    SweepResult out;
    out.config = cfg;
    out.results.resize(cfg.systems.size());
    for (std::size_t i = 0; i < cfg.systems.size(); ++i) {
        for (double rate : cfg.per_gpu_rates) {
            ExperimentConfig ec;
            ec.scenario = cfg.scenario;
            ec.system = cfg.systems[i];
            ec.per_gpu_rate = rate;
            ec.num_requests = cfg.num_requests;
            ec.seed = cfg.seed;
            ec.horizon = cfg.horizon;
            ExperimentResult r = run_experiment(ec);
            if (progress)
                progress(r);
            out.results[i].push_back(std::move(r));
        }
    }
    return out;
}

} // namespace windserve::harness
