#include "harness/sweep.hpp"

#include <cstring>

#include "harness/parallel.hpp"

namespace windserve::harness {

namespace {

/** splitmix64 finalizer: full-avalanche 64-bit mixing. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

std::uint64_t
derive_cell_seed(std::uint64_t base_seed, SystemKind system,
                 double per_gpu_rate)
{
    std::uint64_t rate_bits = 0;
    static_assert(sizeof(rate_bits) == sizeof(per_gpu_rate));
    std::memcpy(&rate_bits, &per_gpu_rate, sizeof(rate_bits));
    std::uint64_t h = mix64(base_seed);
    h = mix64(h ^ (static_cast<std::uint64_t>(system) + 1));
    h = mix64(h ^ rate_bits);
    return h;
}

std::vector<ExperimentResult>
run_experiments(const std::vector<ExperimentConfig> &cells,
                std::size_t jobs, const SweepProgress &progress)
{
    // Pre-allocated result slots: each job writes only its own index,
    // so no completion order can reorder the output.
    std::vector<ExperimentResult> slots(cells.size());
    std::function<void(std::size_t)> deliver;
    if (progress)
        deliver = [&progress, &slots, total = cells.size()](std::size_t i) {
            progress(i, total, slots[i]);
        };
    OrderedReporter reporter(cells.size(), std::move(deliver));
    parallel_for(cells.size(), jobs, [&](std::size_t i) {
        slots[i] = run_experiment(cells[i]);
        reporter.complete(i);
    });
    return slots;
}

SweepBuilder &
SweepBuilder::scenario(const Scenario &s)
{
    cfg_.scenario = s;
    return *this;
}

SweepBuilder &
SweepBuilder::systems(std::vector<SystemKind> s)
{
    cfg_.systems = std::move(s);
    return *this;
}

SweepBuilder &
SweepBuilder::rates(std::vector<double> r)
{
    cfg_.per_gpu_rates = std::move(r);
    return *this;
}

SweepBuilder &
SweepBuilder::num_requests(std::size_t n)
{
    cfg_.num_requests = n;
    return *this;
}

SweepBuilder &
SweepBuilder::seed(std::uint64_t s)
{
    cfg_.seed = s;
    return *this;
}

SweepBuilder &
SweepBuilder::horizon(double h)
{
    cfg_.horizon = h;
    return *this;
}

SweepBuilder &
SweepBuilder::jobs(std::size_t j)
{
    cfg_.jobs = j ? j : 1;
    return *this;
}

SweepBuilder &
SweepBuilder::on_progress(SweepProgress fn)
{
    progress_ = std::move(fn);
    return *this;
}

SweepResult
SweepBuilder::run() const
{
    const std::size_t num_rates = cfg_.per_gpu_rates.size();
    std::vector<ExperimentConfig> cells;
    cells.reserve(cfg_.systems.size() * num_rates);
    for (SystemKind system : cfg_.systems) {
        for (double rate : cfg_.per_gpu_rates) {
            ExperimentConfig ec;
            ec.scenario = cfg_.scenario;
            ec.system = system;
            ec.per_gpu_rate = rate;
            ec.num_requests = cfg_.num_requests;
            ec.seed = derive_cell_seed(cfg_.seed, system, rate);
            ec.horizon = cfg_.horizon;
            cells.push_back(std::move(ec));
        }
    }

    auto flat = run_experiments(cells, cfg_.jobs, progress_);

    SweepResult out;
    out.config = cfg_;
    out.results.resize(cfg_.systems.size());
    for (std::size_t i = 0; i < cfg_.systems.size(); ++i) {
        out.results[i].reserve(num_rates);
        for (std::size_t j = 0; j < num_rates; ++j)
            out.results[i].push_back(std::move(flat[i * num_rates + j]));
    }
    return out;
}

} // namespace windserve::harness
