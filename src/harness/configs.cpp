#include "harness/configs.hpp"

namespace windserve::harness {

Scenario
Scenario::opt13b_sharegpt()
{
    Scenario s;
    s.name = "OPT-13B/ShareGPT";
    s.model = model::ModelSpec::opt_13b();
    s.dataset = workload::DatasetConfig::sharegpt(s.model.max_context);
    s.slo = metrics::SloSpec::opt_13b_sharegpt();
    s.prefill_parallelism = {2, 1};
    s.decode_parallelism = {2, 1};
    return s;
}

Scenario
Scenario::opt66b_sharegpt()
{
    Scenario s;
    s.name = "OPT-66B/ShareGPT";
    s.model = model::ModelSpec::opt_66b();
    s.dataset = workload::DatasetConfig::sharegpt(s.model.max_context);
    s.slo = metrics::SloSpec::opt_66b_sharegpt();
    s.prefill_parallelism = {2, 2};
    s.decode_parallelism = {2, 2};
    return s;
}

Scenario
Scenario::llama2_13b_longbench()
{
    Scenario s;
    s.name = "LLaMA2-13B/LongBench";
    s.model = model::ModelSpec::llama2_13b();
    s.dataset = workload::DatasetConfig::longbench(s.model.max_context);
    s.slo = metrics::SloSpec::llama2_13b_longbench();
    s.prefill_parallelism = {2, 1};
    s.decode_parallelism = {2, 1};
    return s;
}

Scenario
Scenario::llama2_70b_longbench()
{
    Scenario s;
    s.name = "LLaMA2-70B/LongBench";
    s.model = model::ModelSpec::llama2_70b();
    s.dataset = workload::DatasetConfig::longbench(s.model.max_context);
    s.slo = metrics::SloSpec::llama2_70b_longbench();
    s.prefill_parallelism = {2, 2};
    s.decode_parallelism = {2, 2};
    return s;
}

Scenario
Scenario::opt13b_sharegpt_small_decode()
{
    Scenario s = opt13b_sharegpt();
    s.name = "OPT-13B/ShareGPT [TP-2,TP-1]";
    s.decode_parallelism = {1, 1};
    return s;
}

} // namespace windserve::harness
