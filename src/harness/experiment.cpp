#include "harness/experiment.hpp"

#include "obs/trace_recorder.hpp"

namespace windserve::harness {

const char *
to_string(SystemKind k)
{
    switch (k) {
      case SystemKind::WindServe:
        return "WindServe";
      case SystemKind::DistServe:
        return "DistServe";
      case SystemKind::Vllm:
        return "vLLM";
      case SystemKind::WindServeNoSplit:
        return "WindServe-no-split";
      case SystemKind::WindServeNoResche:
        return "WindServe-no-resche";
      case SystemKind::WindServeNoDispatch:
        return "WindServe-no-dispatch";
    }
    return "unknown";
}

namespace {

std::size_t
num_pods_of(const ExperimentConfig &cfg)
{
    return cfg.num_nodes * cfg.pods_per_node;
}

core::WindServeConfig
make_windserve_config(const ExperimentConfig &cfg)
{
    const Scenario &sc = cfg.scenario;
    core::WindServeConfig ws;
    ws.model = sc.model;
    ws.topology = sc.topology;
    ws.prefill_parallelism = sc.prefill_parallelism;
    ws.decode_parallelism = sc.decode_parallelism;
    ws.ttft_slo = sc.slo.ttft;
    ws.tpot_slo = sc.slo.tpot;
    // "we set the threshold slightly below the TTFT SLO" (§3.2.2).
    ws.coordinator.thrd = cfg.thrd.value_or(0.8 * sc.slo.ttft);
    ws.migration.stall_free = cfg.stall_free;
    if (cfg.transfer_policy)
        ws.transfer.policy = *cfg.transfer_policy;
    ws.coordinator.enable_backup = cfg.enable_backup;
    ws.swap_enabled = cfg.swap_enabled;
    ws.host_memory_bytes = cfg.host_memory_bytes;
    ws.kv_capacity_tokens_override = cfg.kv_capacity_tokens_override;
    ws.seed = cfg.seed ^ 0x9e3779b97f4a7c15ULL;
    switch (cfg.system) {
      case SystemKind::WindServeNoSplit:
        ws.enable_sbd = false;
        break;
      case SystemKind::WindServeNoResche:
        ws.coordinator.enable_rescheduling = false;
        ws.coordinator.enable_backup = false;
        break;
      case SystemKind::WindServeNoDispatch:
        ws.coordinator.enable_dispatch = false;
        break;
      default:
        break;
    }
    return ws;
}

std::unique_ptr<engine::ServingSystem>
make_windserve(const ExperimentConfig &cfg)
{
    core::WindServeConfig ws = make_windserve_config(cfg);
    if (num_pods_of(cfg) > 1 || cfg.sharded || cfg.ctrl_replicas > 1) {
        core::ClusterConfig cc;
        cc.pod = std::move(ws);
        cc.num_nodes = cfg.num_nodes;
        cc.pods_per_node = cfg.pods_per_node;
        cc.inter_node_links = cfg.inter_node_links;
        if (cfg.offload_highwater)
            cc.offload_highwater = *cfg.offload_highwater;
        if (cfg.offload_lowwater)
            cc.offload_lowwater = *cfg.offload_lowwater;
        cc.ctrl.replicas = cfg.ctrl_replicas;
        return std::make_unique<core::ClusterServeSystem>(std::move(cc));
    }
    return std::make_unique<core::WindServeSystem>(ws);
}

} // namespace

std::unique_ptr<engine::ServingSystem>
make_system(const ExperimentConfig &cfg)
{
    const Scenario &sc = cfg.scenario;
    switch (cfg.system) {
      case SystemKind::WindServe:
      case SystemKind::WindServeNoSplit:
      case SystemKind::WindServeNoResche:
      case SystemKind::WindServeNoDispatch:
        return make_windserve(cfg);
      case SystemKind::DistServe: {
        baselines::DistServeConfig ds;
        ds.model = sc.model;
        ds.topology = sc.topology;
        ds.prefill_parallelism = sc.prefill_parallelism;
        ds.decode_parallelism = sc.decode_parallelism;
        ds.swap_enabled = cfg.swap_enabled;
        ds.host_memory_bytes = cfg.host_memory_bytes;
        ds.kv_capacity_tokens_override = cfg.kv_capacity_tokens_override;
        ds.num_replicas = num_pods_of(cfg);
        ds.seed = cfg.seed ^ 0x9e3779b97f4a7c15ULL;
        return std::make_unique<baselines::DistServeSystem>(ds);
      }
      case SystemKind::Vllm: {
        baselines::VllmConfig vc;
        vc.model = sc.model;
        vc.topology = sc.topology;
        // vLLM places every engine on real GPUs (unlike DistServe's
        // per-replica placement), so a cluster run widens the topology
        // to the full node count.
        vc.topology.num_nodes = cfg.num_nodes;
        // Same parallelism per engine as one PD instance, replicated
        // over the scenario's full GPU budget.
        vc.engine_parallelism = sc.prefill_parallelism;
        vc.num_engines = num_pods_of(cfg) * sc.num_gpus() /
                         sc.prefill_parallelism.num_gpus();
        vc.swap_enabled = cfg.swap_enabled;
        vc.host_memory_bytes = cfg.host_memory_bytes;
        vc.kv_capacity_tokens_override = cfg.kv_capacity_tokens_override;
        vc.seed = cfg.seed ^ 0x9e3779b97f4a7c15ULL;
        return std::make_unique<baselines::VllmColocatedSystem>(vc);
      }
    }
    throw std::logic_error("make_system: unknown system kind");
}

std::vector<workload::Request>
make_trace(const ExperimentConfig &cfg)
{
    workload::TraceConfig tc;
    tc.dataset = cfg.scenario.dataset;
    tc.arrival.kind = workload::ArrivalKind::Poisson;
    // The scenario describes one pod; a cluster run replays the same
    // per-GPU rate over the whole fleet (linear scaling rule, §2.2).
    tc.arrival.rate =
        cfg.per_gpu_rate * static_cast<double>(cfg.scenario.num_gpus()) *
        static_cast<double>(cfg.num_nodes * cfg.pods_per_node);
    tc.num_requests = cfg.num_requests;
    tc.seed = cfg.seed;
    return workload::TraceBuilder(tc).build();
}

ExperimentResult
run_experiment(const ExperimentConfig &cfg)
{
    auto system = make_system(cfg);
    engine::RunOptions opts;
    opts.slo = cfg.scenario.slo;
    opts.horizon = cfg.horizon;
    opts.tracing = cfg.record_trace;
    if (cfg.audit) {
        audit::AuditConfig ac;
        ac.repro_seed = cfg.seed;
        ac.repro_config = to_string(cfg.system);
        if (cfg.faults)
            ac.repro_extra = " --chaos";
        if (cfg.num_nodes > 1)
            ac.repro_extra += " --nodes=" + std::to_string(cfg.num_nodes);
        // Strictly appended after every historical field so old
        // --repro-seed lines replay byte-identically.
        if (cfg.intra_threads > 1)
            ac.repro_extra +=
                " --intra-threads=" + std::to_string(cfg.intra_threads);
        if (cfg.ctrl_replicas > 1)
            ac.repro_extra +=
                " --replicas=" + std::to_string(cfg.ctrl_replicas);
        opts.audit = std::move(ac);
    }
    opts.faults = cfg.faults; // horizon <= 0 inherits opts.horizon
    opts.telemetry = cfg.telemetry;
    opts.intra_threads = cfg.intra_threads;
    auto trace = make_trace(cfg);
    auto run = system->run(trace, opts);

    ExperimentResult result;
    result.system_name = to_string(cfg.system);
    result.per_gpu_rate = cfg.per_gpu_rate;
    result.metrics = std::move(run.metrics);
    result.events_fired = system->total_events_fired();
    if (const obs::TraceRecorder *rec = system->trace()) {
        result.trace_json = rec->chrome_json();
        result.trace_request_csv =
            obs::TraceRecorder::request_csv(run.requests);
        result.trace_events = rec->num_events();
    }
    if (const audit::SimAuditor *aud = system->audit()) {
        result.audit_events = aud->events_audited();
        result.audit_violations = aud->total_violations();
    }
    if (const obs::Telemetry *tel = system->telemetry()) {
        result.metrics_prometheus = tel->registry().prometheus_text();
        result.metrics_csv = tel->registry().csv();
        result.journal_csv = tel->journal_data().csv();
        result.journal_json = tel->journal_data().json();
        // Counts-only table: wall-clock columns are non-deterministic.
        result.profile_table = tel->profile_table(false);
        result.metric_samples = tel->registry().num_samples();
        result.metric_families = tel->registry().num_families();
        result.journal_decisions = tel->journal_data().size();
        result.profiled_attribution = tel->attributed_fraction();
    }

    if (auto *cs = dynamic_cast<core::ClusterServeSystem *>(system.get())) {
        result.dispatches = cs->total_dispatches();
        result.reschedules = cs->total_reschedules();
        result.migrations_completed = cs->total_migrations();
        result.backups = cs->total_backups();
        for (std::size_t k = 0; k < cs->num_pods(); ++k)
            result.decode_swap_outs +=
                cs->pod(k).decode_instance().swap_out_events();
    } else if (auto *ws =
                   dynamic_cast<core::WindServeSystem *>(system.get())) {
        result.dispatches = ws->scheduler().coordinator().dispatches();
        result.reschedules = ws->scheduler().coordinator().reschedules();
        result.migrations_completed = ws->migration().completed();
        result.backups = ws->backup().backups_taken();
        result.decode_swap_outs = ws->decode_instance().swap_out_events();
    } else if (auto *ds = dynamic_cast<baselines::DistServeSystem *>(
                   system.get())) {
        for (std::size_t i = 0; i < ds->num_replicas(); ++i)
            result.decode_swap_outs +=
                ds->replica_decode(i).swap_out_events();
    } else if (auto *vs = dynamic_cast<baselines::VllmColocatedSystem *>(
                   system.get())) {
        for (std::size_t i = 0; i < vs->num_engines(); ++i)
            result.decode_swap_outs +=
                vs->engine_instance(i).swap_out_events();
    }
    return result;
}

} // namespace windserve::harness
