#include "harness/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace windserve::harness {

const char *
to_string(RoutePolicy p)
{
    switch (p) {
      case RoutePolicy::RoundRobin:
        return "round-robin";
      case RoutePolicy::LeastPendingTokens:
        return "least-pending-tokens";
    }
    return "unknown";
}

std::vector<std::size_t>
route_trace(const std::vector<workload::Request> &trace,
            std::size_t num_replicas, RoutePolicy policy)
{
    if (num_replicas == 0)
        throw std::invalid_argument("route_trace: need >= 1 replica");
    std::vector<std::size_t> shard(trace.size(), 0);
    switch (policy) {
      case RoutePolicy::RoundRobin: {
        for (std::size_t i = 0; i < trace.size(); ++i)
            shard[i] = i % num_replicas;
        break;
      }
      case RoutePolicy::LeastPendingTokens: {
        // Greedy token-aware router: track an exponentially-decaying
        // load estimate per replica (outstanding prompt+output tokens)
        // and send each request to the least-loaded one. The decay
        // models requests draining between arrivals.
        std::vector<double> load(num_replicas, 0.0);
        double last_t = trace.empty() ? 0.0 : trace.front().arrival_time;
        const double drain_tau = 10.0; // seconds of estimated residency
        for (std::size_t i = 0; i < trace.size(); ++i) {
            double dt = trace[i].arrival_time - last_t;
            last_t = trace[i].arrival_time;
            double decay = dt > 0 ? std::exp(-dt / drain_tau) : 1.0;
            for (auto &l : load)
                l *= decay;
            std::size_t best = 0;
            for (std::size_t r = 1; r < num_replicas; ++r)
                if (load[r] < load[best])
                    best = r;
            shard[i] = best;
            load[best] += static_cast<double>(trace[i].prompt_tokens +
                                              trace[i].output_tokens);
        }
        break;
      }
    }
    return shard;
}

ClusterResult
run_cluster(const ClusterConfig &cfg)
{
    if (cfg.num_replicas == 0)
        throw std::invalid_argument("run_cluster: need >= 1 replica");

    // One cluster-wide trace at the aggregate rate.
    ExperimentConfig gen = cfg.replica;
    workload::TraceConfig tc;
    tc.dataset = gen.scenario.dataset;
    tc.arrival.kind = workload::ArrivalKind::Poisson;
    tc.arrival.rate = gen.per_gpu_rate *
                      static_cast<double>(gen.scenario.num_gpus()) *
                      static_cast<double>(cfg.num_replicas);
    tc.num_requests = gen.num_requests;
    tc.seed = gen.seed;
    auto trace = workload::TraceBuilder(tc).build();

    auto shard = route_trace(trace, cfg.num_replicas, cfg.policy);

    ClusterResult out;
    out.assigned.assign(cfg.num_replicas, 0);
    std::vector<workload::Request> merged;
    merged.reserve(trace.size());

    for (std::size_t r = 0; r < cfg.num_replicas; ++r) {
        std::vector<workload::Request> sub;
        for (std::size_t i = 0; i < trace.size(); ++i)
            if (shard[i] == r)
                sub.push_back(trace[i]);
        out.assigned[r] = sub.size();

        ExperimentConfig ec = cfg.replica;
        ec.seed = cfg.replica.seed + 7919 * (r + 1); // distinct jitter
        auto system = make_system(ec);
        system->run(sub, ec.horizon);

        ExperimentResult res;
        res.system_name = to_string(ec.system);
        res.per_gpu_rate = ec.per_gpu_rate;
        metrics::Collector collector(ec.scenario.slo);
        res.metrics = collector.collect(system->requests());
        system->fill_system_metrics(res.metrics);
        out.per_replica.push_back(std::move(res));

        merged.insert(merged.end(), system->requests().begin(),
                      system->requests().end());
    }

    metrics::Collector collector(cfg.replica.scenario.slo);
    out.metrics = collector.collect(merged);
    return out;
}

} // namespace windserve::harness
