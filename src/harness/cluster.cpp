#include "harness/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "harness/parallel.hpp"

namespace windserve::harness {

const char *
to_string(RoutePolicy p)
{
    switch (p) {
      case RoutePolicy::RoundRobin:
        return "round-robin";
      case RoutePolicy::LeastPendingTokens:
        return "least-pending-tokens";
    }
    return "unknown";
}

std::vector<std::size_t>
route_trace(const std::vector<workload::Request> &trace,
            std::size_t num_replicas, RoutePolicy policy)
{
    if (num_replicas == 0)
        throw std::invalid_argument("route_trace: need >= 1 replica");
    std::vector<std::size_t> shard(trace.size(), 0);
    switch (policy) {
      case RoutePolicy::RoundRobin: {
        for (std::size_t i = 0; i < trace.size(); ++i)
            shard[i] = i % num_replicas;
        break;
      }
      case RoutePolicy::LeastPendingTokens: {
        // Greedy token-aware router: track an exponentially-decaying
        // load estimate per replica (outstanding prompt+output tokens)
        // and send each request to the least-loaded one. The decay
        // models requests draining between arrivals.
        std::vector<double> load(num_replicas, 0.0);
        double last_t = trace.empty() ? 0.0 : trace.front().arrival_time;
        const double drain_tau = 10.0; // seconds of estimated residency
        for (std::size_t i = 0; i < trace.size(); ++i) {
            double dt = trace[i].arrival_time - last_t;
            last_t = trace[i].arrival_time;
            double decay = dt > 0 ? std::exp(-dt / drain_tau) : 1.0;
            for (auto &l : load)
                l *= decay;
            std::size_t best = 0;
            for (std::size_t r = 1; r < num_replicas; ++r)
                if (load[r] < load[best])
                    best = r;
            shard[i] = best;
            load[best] += static_cast<double>(trace[i].prompt_tokens +
                                              trace[i].output_tokens);
        }
        break;
      }
    }
    return shard;
}

ClusterResult
run_cluster(const ClusterConfig &cfg)
{
    if (cfg.num_replicas == 0)
        throw std::invalid_argument("run_cluster: need >= 1 replica");

    // One cluster-wide trace at the aggregate rate.
    ExperimentConfig gen = cfg.replica;
    workload::TraceConfig tc;
    tc.dataset = gen.scenario.dataset;
    tc.arrival.kind = workload::ArrivalKind::Poisson;
    tc.arrival.rate = gen.per_gpu_rate *
                      static_cast<double>(gen.scenario.num_gpus()) *
                      static_cast<double>(cfg.num_replicas);
    tc.num_requests = gen.num_requests;
    tc.seed = gen.seed;
    auto trace = workload::TraceBuilder(tc).build();

    auto shard = route_trace(trace, cfg.num_replicas, cfg.policy);

    ClusterResult out;
    out.assigned.assign(cfg.num_replicas, 0);

    // Shard the trace up front, then simulate the replicas as
    // independent cells on the parallel engine; each job writes only
    // its own slot, and the merge below walks slots in replica order,
    // so the outcome is identical at any thread count.
    std::vector<std::vector<workload::Request>> shards(cfg.num_replicas);
    for (std::size_t i = 0; i < trace.size(); ++i)
        shards[shard[i]].push_back(trace[i]);
    for (std::size_t r = 0; r < cfg.num_replicas; ++r)
        out.assigned[r] = shards[r].size();

    std::vector<engine::RunResult> runs(cfg.num_replicas);
    parallel_for(cfg.num_replicas, cfg.jobs, [&](std::size_t r) {
        ExperimentConfig ec = cfg.replica;
        ec.seed = cfg.replica.seed + 7919 * (r + 1); // distinct jitter
        auto system = make_system(ec);
        runs[r] = system->run(shards[r], ec.scenario.slo, ec.horizon);
    });

    std::vector<workload::Request> merged;
    merged.reserve(trace.size());
    for (std::size_t r = 0; r < cfg.num_replicas; ++r) {
        ExperimentResult res;
        res.system_name = to_string(cfg.replica.system);
        res.per_gpu_rate = cfg.replica.per_gpu_rate;
        res.metrics = std::move(runs[r].metrics);
        out.per_replica.push_back(std::move(res));
        merged.insert(merged.end(), runs[r].requests.begin(),
                      runs[r].requests.end());
    }

    metrics::Collector collector(cfg.replica.scenario.slo);
    out.metrics = collector.collect(merged);
    return out;
}

} // namespace windserve::harness
