#include "harness/fuzz.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <stdexcept>

#include "audit/sim_auditor.hpp"
#include "harness/parallel.hpp"
#include "simcore/rng.hpp"

namespace windserve::harness {

namespace {

// FNV-1a, folded over a value's raw bytes.
std::uint64_t
fnv1a(std::uint64_t h, const void *data, std::size_t len)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
hash_request(const workload::Request &r)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = fnv1a(h, &r.id, sizeof(r.id));
    std::uint64_t gen = r.generated;
    h = fnv1a(h, &gen, sizeof(gen));
    h = fnv1a(h, &r.finish_time, sizeof(r.finish_time));
    h = fnv1a(h, &r.first_token_time, sizeof(r.first_token_time));
    std::uint32_t state = static_cast<std::uint32_t>(r.state);
    h = fnv1a(h, &state, sizeof(state));
    return h;
}

} // namespace

std::uint64_t
result_checksum(const std::vector<workload::Request> &requests)
{
    // XOR of per-request hashes: order-independent, so checksums agree
    // no matter how a caller ordered or partitioned the result set.
    std::uint64_t acc = 0;
    for (const auto &r : requests)
        acc ^= hash_request(r);
    return acc;
}

ExperimentConfig
make_fuzz_config(std::uint64_t seed, SystemKind system, bool chaos,
                 std::size_t nodes, std::size_t intra_threads,
                 std::size_t replicas, bool ctrl_chaos)
{
    // Independent stream per (seed, system) so the same seed explores
    // different configs on each system.
    sim::Rng rng(seed * 0x9e3779b97f4a7c15ULL +
                 static_cast<std::uint64_t>(system) + 1);

    ExperimentConfig cfg;
    cfg.scenario = Scenario::opt13b_sharegpt();
    cfg.system = system;
    cfg.seed = seed;
    cfg.audit = true;
    cfg.num_requests =
        static_cast<std::size_t>(rng.uniform_int(40, 140));
    cfg.per_gpu_rate = rng.uniform(0.4, 2.5);
    // Bounded horizon: overload cases may legitimately not drain; the
    // auditor's end-of-run accounting covers unfinished requests too.
    cfg.horizon = rng.uniform(600.0, 1200.0);

    // Memory pressure dial. The floor keeps every sampled request
    // admissible (ShareGPT max_context is 2048 tokens) while staying
    // small enough that long decodes exhaust blocks and exercise
    // swapping, migration and parking.
    if (rng.chance(0.6)) {
        cfg.kv_capacity_tokens_override =
            static_cast<std::size_t>(rng.uniform_int(2560, 8192));
    }
    if (rng.chance(0.3)) {
        // Tiny host pool: swap-outs start bouncing off a full pool.
        cfg.host_memory_bytes = rng.uniform(1e6, 5e8);
    }
    if (rng.chance(0.15))
        cfg.swap_enabled = false; // park-in-queue fallback only

    // System-behaviour dials (WindServe variants read these).
    if (rng.chance(0.25))
        cfg.stall_free = false;
    if (rng.chance(0.25))
        cfg.enable_backup = false;
    if (rng.chance(0.2))
        cfg.transfer_policy = transfer::TransferPolicy::Synchronous;
    if (rng.chance(0.2))
        cfg.thrd = rng.uniform(0.05, 0.5);

    if (chaos) {
        // All chaos draws come AFTER every base draw: toggling the flag
        // never perturbs the fault-free config of the same seed.
        // Tight dials: the sampled traces (40-140 requests on 4 GPUs)
        // drain within tens of seconds, so faults must land early and
        // often to catch requests in flight at all.
        fault::FaultConfig fc;
        fc.seed = seed ^ 0xc2b2ae3d27d4eb4fULL;
        fc.warmup = rng.uniform(2.0, 20.0);
        fc.crash_mtbf = rng.uniform(8.0, 80.0);
        fc.mean_repair = rng.uniform(2.0, 15.0);
        if (rng.chance(0.5)) {
            fc.link_mtbf = rng.uniform(20.0, 120.0);
            fc.mean_outage = rng.uniform(0.5, 4.0);
            fc.degrade_factor =
                rng.chance(0.5) ? 0.0 : rng.uniform(0.05, 0.5);
        }
        if (rng.chance(0.5)) {
            fc.straggler_mtbf = rng.uniform(30.0, 150.0);
            fc.mean_straggler = rng.uniform(5.0, 20.0);
            fc.straggler_slowdown = rng.uniform(1.5, 4.0);
        }
        if (rng.chance(0.3)) {
            fc.recovery.max_attempts =
                static_cast<std::size_t>(rng.uniform_int(1, 4));
        }
        if (nodes > 1) {
            // Cluster chaos: whole-node crashes and (via the generic
            // link-outage class, which also targets registered NICs)
            // inter-node link failures. Drawn strictly after every
            // single-node dial so nodes == 1 stays byte-identical.
            if (rng.chance(0.5)) {
                fc.node_mtbf = rng.uniform(60.0, 300.0);
                fc.mean_node_repair = rng.uniform(3.0, 12.0);
            }
        }
        cfg.faults = fc; // horizon <= 0: takes the experiment horizon
    }
    if (ctrl_chaos) {
        // Control-plane chaos: leader crashes and control partitions.
        // Drawn strictly after EVERY existing axis (base, chaos, node
        // chaos) so toggling --ctrl-chaos never perturbs a historical
        // case's config or fault schedule.
        fault::FaultConfig fc2;
        if (cfg.faults) {
            fc2 = *cfg.faults;
        } else {
            // Without --chaos the schedule carries control-plane
            // faults only (crash_mtbf stays 0 = disabled).
            fc2.seed = seed ^ 0xc2b2ae3d27d4eb4fULL;
            fc2.warmup = rng.uniform(2.0, 20.0);
            fc2.crash_mtbf = 0.0;
        }
        fc2.leader_mtbf = rng.uniform(4.0, 30.0);
        fc2.mean_leader_repair = rng.uniform(1.0, 8.0);
        if (rng.chance(0.5)) {
            fc2.partition_mtbf = rng.uniform(8.0, 60.0);
            fc2.mean_partition = rng.uniform(0.5, 3.0);
        }
        cfg.faults = fc2;
    }
    cfg.num_nodes = nodes == 0 ? 1 : nodes;
    // Thread count is a pure parameter (no draw): byte-identity across
    // values is exactly what the determinism harness asserts. Replica
    // count likewise: the control plane forks its own seed stream.
    cfg.intra_threads = intra_threads == 0 ? 1 : intra_threads;
    cfg.ctrl_replicas = replicas == 0 ? 1 : replicas;
    return cfg;
}

FuzzResult
run_fuzz_case(const ExperimentConfig &cfg)
{
    auto system = make_system(cfg);
    engine::RunOptions opts;
    opts.slo = cfg.scenario.slo;
    opts.horizon = cfg.horizon;
    audit::AuditConfig ac;
    ac.repro_seed = cfg.seed;
    ac.repro_config = to_string(cfg.system);
    // A control-chaos-only schedule (crash_mtbf == 0) is NOT --chaos:
    // the repro line must rebuild the exact draw sequence.
    if (cfg.faults && cfg.faults->crash_mtbf > 0.0)
        ac.repro_extra = " --chaos";
    if (cfg.num_nodes > 1)
        ac.repro_extra += " --nodes=" + std::to_string(cfg.num_nodes);
    if (cfg.intra_threads > 1)
        ac.repro_extra +=
            " --intra-threads=" + std::to_string(cfg.intra_threads);
    // Strictly appended after every historical field.
    if (cfg.ctrl_replicas > 1)
        ac.repro_extra +=
            " --replicas=" + std::to_string(cfg.ctrl_replicas);
    if (cfg.faults && cfg.faults->leader_mtbf > 0.0)
        ac.repro_extra += " --ctrl-chaos";
    opts.audit = std::move(ac);
    opts.faults = cfg.faults; // horizon <= 0 inherits opts.horizon
    opts.intra_threads = cfg.intra_threads;
    auto trace = make_trace(cfg);
    auto run = system->run(trace, opts);
    const audit::SimAuditor *aud = system->audit();

    FuzzResult res;
    res.seed = cfg.seed;
    res.system_name = to_string(cfg.system);
    res.audit_events = aud->events_audited();
    res.audit_violations = aud->total_violations();
    res.num_requests = run.requests.size();
    res.finished = run.metrics.num_finished;
    res.unfinished = run.metrics.num_unfinished;
    res.aborted = run.metrics.num_aborted;
    for (const auto &r : run.requests)
        res.generated_tokens += r.generated;
    res.checksum = result_checksum(run.requests);
    return res;
}

FuzzResult
run_fuzz_case(std::uint64_t seed, SystemKind system)
{
    return run_fuzz_case(make_fuzz_config(seed, system));
}

FuzzSummary
run_fuzz(const FuzzOptions &opt)
{
    std::size_t total = opt.iterations * opt.systems.size();
    FuzzSummary sum;
    sum.results.resize(total);
    parallel_for(total, opt.jobs, [&](std::size_t i) {
        std::size_t iter = i / opt.systems.size();
        SystemKind system = opt.systems[i % opt.systems.size()];
        sum.results[i] = run_fuzz_case(make_fuzz_config(
            opt.base_seed + static_cast<std::uint64_t>(iter), system,
            opt.chaos, opt.nodes, opt.intra_threads, opt.replicas,
            opt.ctrl_chaos));
    });
    for (const auto &r : sum.results) {
        sum.total_events += r.audit_events;
        sum.total_violations += r.audit_violations;
    }
    return sum;
}

SystemKind
parse_system_kind(const std::string &name)
{
    std::string k;
    for (char c : name)
        k += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (k == "windserve")
        return SystemKind::WindServe;
    if (k == "distserve")
        return SystemKind::DistServe;
    if (k == "vllm")
        return SystemKind::Vllm;
    if (k == "windserve-no-split")
        return SystemKind::WindServeNoSplit;
    if (k == "windserve-no-resche")
        return SystemKind::WindServeNoResche;
    if (k == "windserve-no-dispatch")
        return SystemKind::WindServeNoDispatch;
    throw std::invalid_argument("unknown system: " + name);
}

} // namespace windserve::harness
