/**
 * @file
 * Simulation-driven placement search.
 *
 * The paper (§5.1): "Based on the model, latency requirements and SLO
 * attainment targets, DistServe determines the placement of prefill
 * and decoding instances by simulation. WindServe adopts the same
 * method to establish its parallelism strategy."
 *
 * This module enumerates feasible [TP-x,PP-y | TP-x,PP-y] placements
 * within a GPU budget, runs a short simulation of each, and ranks them
 * by SLO attainment (ties: fewer GPUs, then lower TTFT median). The
 * Table 3 placements fall out of exactly this procedure.
 */
#pragma once

#include <vector>

#include "harness/experiment.hpp"

namespace windserve::harness {

/** One candidate placement. */
struct PlacementCandidate {
    model::ParallelismConfig prefill;
    model::ParallelismConfig decode;

    std::size_t num_gpus() const
    {
        return prefill.num_gpus() + decode.num_gpus();
    }
    std::string to_string() const;
};

/** Search configuration. */
struct PlacementSearchConfig {
    Scenario scenario = Scenario::opt13b_sharegpt();
    SystemKind system = SystemKind::WindServe;
    double per_gpu_rate = 2.0;
    std::size_t num_requests = 800;
    std::uint64_t seed = 42;
    /** Total GPU budget (the testbed node has 8). */
    std::size_t max_gpus = 8;
    /** Candidate TP and PP degrees per instance. */
    std::vector<std::size_t> tp_options{1, 2, 4};
    std::vector<std::size_t> pp_options{1, 2};
    /** Worker threads for candidate evaluation (1 = sequential). */
    std::size_t jobs = 1;
};

/** Scored candidate. */
struct PlacementScore {
    PlacementCandidate placement;
    metrics::RunMetrics metrics;
    bool feasible = false; ///< model fits and the simulation completed
};

/**
 * Enumerate candidates whose model fits in memory and whose GPU count
 * stays within the budget (infeasible weight splits are dropped).
 */
std::vector<PlacementCandidate>
enumerate_placements(const PlacementSearchConfig &cfg);

/** Simulate one candidate and score it. */
PlacementScore evaluate_placement(const PlacementSearchConfig &cfg,
                                  const PlacementCandidate &candidate);

/**
 * Run the full search. @return all scores, best first (attainment desc,
 * then fewer GPUs, then TTFT median).
 */
std::vector<PlacementScore>
search_placements(const PlacementSearchConfig &cfg);

} // namespace windserve::harness
