#include "harness/placement_search.hpp"

#include <algorithm>

#include "harness/parallel.hpp"
#include "hw/gpu_spec.hpp"

namespace windserve::harness {

std::string
PlacementCandidate::to_string() const
{
    return "[" + prefill.to_string() + " | " + decode.to_string() + "]";
}

namespace {

/** True when the model's weights fit the parallelism on this GPU. */
bool
fits(const model::ModelSpec &m, model::ParallelismConfig par,
     const hw::GpuSpec &gpu, const model::CostModelParams &params)
{
    try {
        model::CostModel probe(m, gpu, par, params);
        // Require non-trivial KV space too (a placement whose KV pool
        // is nearly empty can never serve).
        return probe.kv_capacity_tokens() >
               2.0 * static_cast<double>(m.max_context);
    } catch (const std::invalid_argument &) {
        return false;
    }
}

} // namespace

std::vector<PlacementCandidate>
enumerate_placements(const PlacementSearchConfig &cfg)
{
    std::vector<PlacementCandidate> out;
    hw::Topology topo(cfg.scenario.topology);
    const auto &gpu = topo.gpu(0);
    model::CostModelParams params;
    for (std::size_t ptp : cfg.tp_options) {
        for (std::size_t ppp : cfg.pp_options) {
            model::ParallelismConfig p{ptp, ppp};
            if (!fits(cfg.scenario.model, p, gpu, params))
                continue;
            for (std::size_t dtp : cfg.tp_options) {
                for (std::size_t dpp : cfg.pp_options) {
                    model::ParallelismConfig d{dtp, dpp};
                    if (!fits(cfg.scenario.model, d, gpu, params))
                        continue;
                    PlacementCandidate c{p, d};
                    if (c.num_gpus() > cfg.max_gpus)
                        continue;
                    out.push_back(c);
                }
            }
        }
    }
    return out;
}

PlacementScore
evaluate_placement(const PlacementSearchConfig &cfg,
                   const PlacementCandidate &candidate)
{
    PlacementScore score;
    score.placement = candidate;
    ExperimentConfig ec;
    ec.scenario = cfg.scenario;
    ec.scenario.prefill_parallelism = candidate.prefill;
    ec.scenario.decode_parallelism = candidate.decode;
    ec.system = cfg.system;
    ec.per_gpu_rate = cfg.per_gpu_rate;
    ec.num_requests = cfg.num_requests;
    ec.seed = cfg.seed;
    try {
        ExperimentResult r = run_experiment(ec);
        score.metrics = r.metrics;
        score.feasible = true;
    } catch (const std::exception &) {
        score.feasible = false;
    }
    return score;
}

std::vector<PlacementScore>
search_placements(const PlacementSearchConfig &cfg)
{
    // Candidate simulations are independent cells; evaluate them on
    // the shared parallel engine. Slots keep enumeration order, so the
    // stable sort below is deterministic at any thread count.
    auto candidates = enumerate_placements(cfg);
    std::vector<PlacementScore> scores(candidates.size());
    parallel_for(candidates.size(), cfg.jobs, [&](std::size_t i) {
        scores[i] = evaluate_placement(cfg, candidates[i]);
    });
    std::stable_sort(
        scores.begin(), scores.end(),
        [](const PlacementScore &a, const PlacementScore &b) {
            if (a.feasible != b.feasible)
                return a.feasible;
            if (a.metrics.slo_attainment != b.metrics.slo_attainment)
                return a.metrics.slo_attainment > b.metrics.slo_attainment;
            if (a.placement.num_gpus() != b.placement.num_gpus())
                return a.placement.num_gpus() < b.placement.num_gpus();
            return a.metrics.ttft.median() < b.metrics.ttft.median();
        });
    return scores;
}

} // namespace windserve::harness
