#include "engine/instance.hpp"

#include <algorithm>
#include <cassert>

#include "audit/sim_auditor.hpp"
#include "obs/metric_registry.hpp"
#include "obs/trace_recorder.hpp"
#include "simcore/log.hpp"

namespace windserve::engine {

using workload::RequestState;

const char *
to_string(InstanceRole role)
{
    switch (role) {
      case InstanceRole::Prefill:
        return "prefill";
      case InstanceRole::Decode:
        return "decode";
      case InstanceRole::Colocated:
        return "colocated";
    }
    return "unknown";
}

Instance::Instance(sim::Simulator &sim, InstanceConfig cfg,
                   model::CostModel cost, sim::Rng rng, hw::Link host_link)
    : sim_(sim), cfg_(std::move(cfg)),
      sampler_(cost, std::move(rng), cfg_.exec_noise_sigma),
      blocks_((cfg_.kv_capacity_tokens_override
                   ? cfg_.kv_capacity_tokens_override
                   : static_cast<std::size_t>(cost.kv_capacity_tokens())) /
                  cfg_.block_size,
              cfg_.block_size),
      swap_(cfg_.host_memory_bytes, cost.model().kv_bytes_per_token()),
      host_channel_(sim, host_link, cfg_.name + "/host"),
      compute_util_(sim.now()), bw_util_(sim.now()),
      src_pump_(cfg_.name + "/pump"), src_prefill_(cfg_.name + "/prefill"),
      src_sbd_(cfg_.name + "/sbd"), src_decode_(cfg_.name + "/decode")
{
    std::size_t pp = cost.parallelism().pp;
    slots_.resize(pp);
    slot_busy_.assign(pp, false);
    groups_.resize(pp);
    chunk_head_.assign(pp, nullptr);
}

std::size_t
Instance::max_per_group() const
{
    std::size_t pp = groups_.size();
    return std::max<std::size_t>(1, cfg_.max_batch_size / pp);
}

void
Instance::set_trace(obs::TraceRecorder *rec)
{
    trace_ = rec;
    host_channel_.set_trace(rec, cfg_.name, "host-dma");
    swap_.set_trace(rec, cfg_.name);
}

void
Instance::set_audit(audit::SimAuditor *a)
{
    audit_ = a;
    blocks_.set_audit(a, cfg_.name);
    swap_.set_audit(a, cfg_.name);
    host_channel_.set_audit(a);
}

void
Instance::register_metrics(obs::MetricRegistry &reg)
{
    const std::string inst = "instance=\"" + cfg_.name + "\"";
    reg.gauge("ws_queue_requests", inst + ",queue=\"prefill\"",
              [this] {
                  return static_cast<double>(waiting_prefill_requests());
              },
              "Requests waiting or running per instance queue");
    reg.gauge("ws_queue_requests", inst + ",queue=\"decode_waiting\"",
              [this] {
                  return static_cast<double>(waiting_decode_requests());
              });
    reg.gauge("ws_queue_requests", inst + ",queue=\"decode_running\"",
              [this] {
                  return static_cast<double>(running_decode_requests());
              });
    reg.gauge("ws_queue_tokens", inst + ",queue=\"prefill\"",
              [this] {
                  return static_cast<double>(waiting_prefill_tokens());
              },
              "Tokens pending per instance queue");
    reg.gauge("ws_queue_tokens", inst + ",queue=\"assist\"",
              [this] {
                  return static_cast<double>(assist_tokens_pending());
              });
    reg.gauge("ws_gpu_busy", inst + ",resource=\"compute\"",
              [this] { return compute_util_.level(); },
              "Instantaneous busy fraction per GPU resource");
    reg.gauge("ws_gpu_busy", inst + ",resource=\"membw\"",
              [this] { return bw_util_.level(); });
    reg.gauge("ws_kv_block_util", inst,
              [this] { return blocks_.occupancy(); },
              "KV block-manager occupancy fraction");
    reg.gauge("ws_swap_pool_bytes", inst,
              [this] { return swap_.used_bytes(); },
              "Host swap-pool bytes in use");
    reg.gauge("ws_instance_up", inst,
              [this] { return down_ ? 0.0 : 1.0; },
              "1 while the instance is up, 0 while crashed");
    reg.counter("ws_decode_iterations_total", inst,
                [this] { return static_cast<double>(decode_iters_); },
                "Decode iterations executed");
    reg.counter("ws_prefill_passes_total", inst,
                [this] { return static_cast<double>(prefill_passes_); },
                "Pure prefill (and SBD stream) passes executed");
    reg.counter("ws_swap_out_events_total", inst,
                [this] {
                    return static_cast<double>(swap_.swap_out_events());
                },
                "Lifetime swap-out preemptions");
    decode_batch_hist_ =
        reg.histogram("ws_decode_batch_size", inst,
                      obs::Histogram::Options{1.0, 2.0, 10},
                      "Decode batch size at pass start");
    prefill_tokens_hist_ =
        reg.histogram("ws_prefill_pass_tokens", inst,
                      obs::Histogram::Options{64.0, 2.0, 10},
                      "Prompt tokens per prefill pass");
}

// ---------------------------------------------------------------------
// entry points
// ---------------------------------------------------------------------

void
Instance::schedule_pump()
{
    // Defer to a zero-delay event so requests enqueued at the same
    // simulated instant (e.g. a burst arrival) coalesce into one batch
    // instead of the first one racing ahead alone.
    if (pump_scheduled_)
        return;
    pump_scheduled_ = true;
    sim::SourceScope src(sim_, src_pump_);
    sim_.schedule(0.0, [this] {
        pump_scheduled_ = false;
        pump();
    });
}

void
Instance::enqueue_prefill(Request *r)
{
    audit::transition(audit_, *r, RequestState::WaitingPrefill);
    if (r->prefill_enqueue_time == workload::kNoTime)
        r->prefill_enqueue_time = sim_.now();
    prefill_q_.push_back(r);
    schedule_pump();
}

void
Instance::enqueue_decode(Request *r, bool kv_resident)
{
    audit::transition(audit_, *r, RequestState::WaitingDecode);
    if (r->decode_enqueue_time == workload::kNoTime)
        r->decode_enqueue_time = sim_.now();
    if (!kv_resident) {
        // KV arrives with the request (post-transfer); the block manager
        // allocation happens at admission.
        assert(!blocks_.holds(r->id));
    }
    decode_q_.push_back(r);
    schedule_pump();
}

void
Instance::enqueue_assist_prefill(Request *r)
{
    audit::transition(audit_, *r, RequestState::WaitingPrefill);
    r->prefill_dispatched = true;
    if (r->prefill_enqueue_time == workload::kNoTime)
        r->prefill_enqueue_time = sim_.now();
    assist_q_.push_back(r);
    schedule_pump();
}

// ---------------------------------------------------------------------
// mode helpers
// ---------------------------------------------------------------------

bool
Instance::chunk_mode_active() const
{
    if (!cfg_.chunked_prefill)
        return false;
    if (cfg_.role == InstanceRole::Colocated)
        return true;
    // Prefill instance: chunk only while migrated decodes are present
    // (paper §3.3: "if there are decoding jobs in the prefill instance,
    // the prefill jobs in it would be converted to chunked-prefill").
    return cfg_.role == InstanceRole::Prefill &&
           (running_decode_requests() > 0 || !decode_q_.empty());
}

void
Instance::pump()
{
    if (down_)
        return;
    try_swap_in();
    if (!chunk_mode_active() && cfg_.role != InstanceRole::Colocated)
        try_start_prefill_slots();
    if (cfg_.stream_based_disaggregation)
        try_start_sbd_stream();
    // Admit waiting decodes before kicking groups.
    admit_decodes(decode_q_, groups_, max_per_group(), blocks_);
    for (std::size_t g = 0; g < groups_.size(); ++g)
        try_start_group(g);
    refresh_utilization();
}

// ---------------------------------------------------------------------
// pure prefill pipeline slots
// ---------------------------------------------------------------------

void
Instance::try_start_prefill_slots()
{
    sim::SourceScope src(sim_, src_prefill_);
    for (std::size_t s = 0; s < slots_.size(); ++s) {
        if (slot_busy_[s] || prefill_q_.empty())
            continue;
        PrefillBatchLimits limits{cfg_.max_prefill_tokens,
                                  cfg_.max_prefill_requests};
        PrefillBatch batch = form_prefill_batch(prefill_q_, limits, blocks_);
        if (batch.empty())
            return; // KV pressure: wait for blocks
        for (Request *r : batch.requests) {
            if (r->prefill_start_time == workload::kNoTime)
                r->prefill_start_time = sim_.now();
            audit::transition(audit_, *r, RequestState::Prefilling);
        }
        double dur =
            sampler_.prefill(static_cast<double>(batch.total_tokens));
        dur *= slowdown_;
        batch.started = sim_.now();
        batch.expected_end = sim_.now() + dur;
        if (trace_) {
            trace_->instant(
                obs::Category::Scheduler, cfg_.name, "local-scheduler",
                "prefill-batch",
                {obs::num_arg("requests",
                              std::uint64_t(batch.requests.size())),
                 obs::num_arg("tokens", std::uint64_t(batch.total_tokens))});
            trace_->span(
                obs::Category::Gpu, cfg_.name, "slot" + std::to_string(s),
                "prefill", sim_.now(), dur,
                {obs::num_arg("tokens", std::uint64_t(batch.total_tokens)),
                 obs::num_arg("requests",
                              std::uint64_t(batch.requests.size()))});
        }
        if (prefill_tokens_hist_)
            prefill_tokens_hist_->observe(
                static_cast<double>(batch.total_tokens));
        slots_[s] = std::move(batch);
        slot_busy_[s] = true;
        sim_.schedule(dur, [this, s, e = epoch_] {
            if (e == epoch_)
                complete_prefill_batch(s);
        });
    }
}

void
Instance::complete_prefill_batch(std::size_t slot)
{
    PrefillBatch batch = std::move(slots_[slot]);
    slot_busy_[slot] = false;
    ++prefill_passes_;
    if (callbacks.on_prefill_observation) {
        callbacks.on_prefill_observation(
            static_cast<double>(batch.total_tokens),
            batch.expected_end - batch.started);
    }
    for (Request *r : batch.requests)
        finish_prefill_of(r);
    if (callbacks.on_step)
        callbacks.on_step();
    pump();
}

// ---------------------------------------------------------------------
// stream-based disaggregation (assist prefills on the decode instance)
// ---------------------------------------------------------------------

void
Instance::try_start_sbd_stream()
{
    if (sbd_active_ || assist_q_.empty())
        return;
    sim::SourceScope src(sim_, src_sbd_);
    std::vector<Request *> batch;
    std::size_t tokens = 0;
    while (!assist_q_.empty() &&
           tokens < cfg_.max_prefill_tokens) {
        Request *r = assist_q_.front();
        if (!blocks_.can_allocate(r->prompt_tokens)) {
            // The coordinator's slot check raced with decode growth:
            // hand the job back to the global scheduler.
            assist_q_.pop_front();
            if (callbacks.on_assist_bounce)
                callbacks.on_assist_bounce(r);
            continue;
        }
    blocks_.allocate(r->id, r->prompt_tokens);
        assist_q_.pop_front();
        if (r->prefill_start_time == workload::kNoTime)
            r->prefill_start_time = sim_.now();
        audit::transition(audit_, *r, RequestState::Prefilling);
        batch.push_back(r);
        tokens += r->prompt_tokens;
    }
    if (batch.empty())
        return;
    double dur = sampler_.sbd_prefill(static_cast<double>(tokens));
    dur *= slowdown_;
    if (trace_) {
        trace_->instant(
            obs::Category::Scheduler, cfg_.name, "local-scheduler",
            "stream-split",
            {obs::num_arg("requests", std::uint64_t(batch.size())),
             obs::num_arg("tokens", std::uint64_t(tokens))});
        trace_->span(obs::Category::Gpu, cfg_.name, "sbd-stream",
                     "sbd-prefill", sim_.now(), dur,
                     {obs::num_arg("tokens", std::uint64_t(tokens))});
    }
    if (prefill_tokens_hist_)
        prefill_tokens_hist_->observe(static_cast<double>(tokens));
    sbd_batch_ = std::move(batch);
    sbd_tokens_ = tokens;
    sbd_active_ = true;
    sbd_end_ = sim_.now() + dur;
    sim_.schedule(dur, [this, e = epoch_] {
        if (e == epoch_)
            complete_sbd_stream();
    });
}

void
Instance::complete_sbd_stream()
{
    std::vector<Request *> batch = std::move(sbd_batch_);
    sbd_batch_.clear();
    sbd_active_ = false;
    sbd_tokens_ = 0;
    ++prefill_passes_;
    for (Request *r : batch)
        finish_prefill_of(r);
    if (callbacks.on_step)
        callbacks.on_step();
    pump();
}

// ---------------------------------------------------------------------
// decode groups (continuous batching)
// ---------------------------------------------------------------------

void
Instance::try_start_group(std::size_t g)
{
    DecodeGroup &grp = groups_[g];
    if (grp.busy)
        return;
    sim::SourceScope src(sim_, src_decode_);

    std::size_t batch = grp.size();
    std::size_t sum_l = grp.sum_context();

    // Chunked-prefill work available for this pass? A partially-chunked
    // head must be finished via chunking even if chunk mode has since
    // deactivated (e.g. all migrated decodes drained mid-prompt).
    std::size_t chunk_tokens = 0;
    if (chunk_mode_active() || chunk_head_[g] != nullptr) {
        if (chunk_head_[g] == nullptr && !prefill_q_.empty()) {
            Request *cand = prefill_q_.front();
            if (blocks_.can_allocate(cand->prompt_tokens)) {
                blocks_.allocate(cand->id, cand->prompt_tokens);
                prefill_q_.pop_front();
                if (cand->prefill_start_time == workload::kNoTime)
                    cand->prefill_start_time = sim_.now();
                audit::transition(audit_, *cand, RequestState::Prefilling);
                cand->was_chunked = true;
                chunk_head_[g] = cand;
                if (trace_) {
                    trace_->instant(
                        obs::Category::Scheduler, cfg_.name,
                        "local-scheduler", "chunk-admit",
                        {obs::num_arg("req", std::uint64_t(cand->id)),
                         obs::num_arg("tokens",
                                      std::uint64_t(cand->prompt_tokens))});
                }
            }
        }
        if (chunk_head_[g] != nullptr) {
            chunk_tokens = std::min(
                cfg_.chunk_size,
                chunk_head_[g]->prompt_tokens - chunk_head_[g]->prefilled);
        }
    }

    // Hybrid assist prefills (WindServe-no-split: one stream, one pass).
    std::vector<Request *> hybrid;
    std::size_t hybrid_tokens = 0;
    if (cfg_.role == InstanceRole::Decode &&
        !cfg_.stream_based_disaggregation) {
        while (!assist_q_.empty()) {
            Request *r = assist_q_.front();
            if (!blocks_.can_allocate(r->prompt_tokens)) {
                assist_q_.pop_front();
                if (callbacks.on_assist_bounce)
                    callbacks.on_assist_bounce(r);
                continue;
            }
            blocks_.allocate(r->id, r->prompt_tokens);
            assist_q_.pop_front();
            if (r->prefill_start_time == workload::kNoTime)
                r->prefill_start_time = sim_.now();
            audit::transition(audit_, *r, RequestState::Prefilling);
            hybrid.push_back(r);
            hybrid_tokens += r->prompt_tokens;
        }
    }

    if (batch == 0 && chunk_tokens == 0 && hybrid.empty())
        return;

    double dur;
    const char *mode;
    bool pure_decode = false;
    if (!hybrid.empty()) {
        mode = "hybrid";
        dur = sampler_.hybrid(static_cast<double>(hybrid_tokens),
                              static_cast<double>(batch),
                              static_cast<double>(sum_l));
        hybrid_assists_[g] = std::move(hybrid);
    } else if (chunk_tokens > 0) {
        mode = "chunked";
        dur = sampler_.chunked(
            static_cast<double>(chunk_tokens),
            static_cast<double>(chunk_head_[g]->prefilled),
            static_cast<double>(batch), static_cast<double>(sum_l));
        group_chunk_[g] = chunk_tokens;
    } else if (sbd_active_) {
        mode = "sbd-decode";
        dur = sampler_.sbd_decode(static_cast<double>(batch),
                                  static_cast<double>(sum_l));
    } else {
        mode = "decode";
        dur = sampler_.decode(static_cast<double>(batch),
                              static_cast<double>(sum_l));
        pure_decode = true;
    }
    dur *= slowdown_;
    // Observed AFTER the straggler factor: the latency predictor must
    // learn the duration the pass will actually take.
    if (pure_decode && callbacks.on_decode_observation) {
        callbacks.on_decode_observation(static_cast<double>(batch),
                                        static_cast<double>(sum_l), dur);
    }

    for (Request *r : grp.members) {
        if (r->decode_start_time == workload::kNoTime)
            r->decode_start_time = sim_.now();
        // A migrating member keeps its Migrating state: the swap-victim
        // and exhaustion guards key off it, and clobbering it here would
        // let the request be swapped out mid-migration (double-owned).
        if (r->state != RequestState::Migrating)
            audit::transition(audit_, *r, RequestState::Decoding);
    }
    if (trace_) {
        trace_->span(obs::Category::Gpu, cfg_.name,
                     "group" + std::to_string(g), mode, sim_.now(), dur,
                     {obs::num_arg("batch", std::uint64_t(batch)),
                      obs::num_arg("sum_context", std::uint64_t(sum_l)),
                      obs::num_arg("chunk_tokens",
                                   std::uint64_t(chunk_tokens)),
                      obs::num_arg("assist_tokens",
                                   std::uint64_t(hybrid_tokens))});
    }
    if (decode_batch_hist_ && batch > 0)
        decode_batch_hist_->observe(static_cast<double>(batch));
    grp.busy = true;
    grp.iteration_end = sim_.now() + dur;
    grp.iteration_members = grp.members;
    sim_.schedule(dur, [this, g, e = epoch_] {
        if (e == epoch_)
            complete_group(g);
    });
}

void
Instance::complete_group(std::size_t g)
{
    DecodeGroup &grp = groups_[g];
    grp.busy = false;
    if (!grp.members.empty())
        ++decode_iters_;

    // Chunk bookkeeping.
    auto chunk_it = group_chunk_.find(g);
    if (chunk_it != group_chunk_.end()) {
        std::size_t c = chunk_it->second;
        group_chunk_.erase(chunk_it);
        Request *r = chunk_head_[g];
        assert(r != nullptr);
        r->prefilled += c;
        if (r->prefilled >= r->prompt_tokens) {
            chunk_head_[g] = nullptr;
            finish_prefill_of(r);
        }
    }

    // Hybrid assist prefills complete with the pass.
    auto hy_it = hybrid_assists_.find(g);
    if (hy_it != hybrid_assists_.end()) {
        std::vector<Request *> done = std::move(hy_it->second);
        hybrid_assists_.erase(hy_it);
        for (Request *r : done) {
            r->prefilled = r->prompt_tokens;
            finish_prefill_of(r);
        }
    }

    // Token generation for every request that PARTICIPATED in this pass
    // (the snapshot taken at pass start — a request admitted into the
    // group mid-pass computed nothing and earns nothing) and is still
    // resident in the group. An earlier member's block exhaustion may
    // have swapped a later member out DURING this loop; a swapped-out
    // member's pass result is discarded with its KV, so it must not
    // receive the token (and certainly must not "finish" while sitting
    // in the waiting queue).
    std::vector<Request *> members = std::move(grp.iteration_members);
    grp.iteration_members.clear();
    for (Request *r : members) {
        if (!grp.contains(r))
            continue;
        // Reentrancy guard: a finish callback earlier in this loop may
        // pump the instance and re-admit a just-parked snapshot member
        // into this group. It is WaitingDecode again and computed
        // nothing this pass; only members still in a computing state
        // (Decoding, or Migrating under stall-free migration) earn the
        // token.
        if (r->state != RequestState::Decoding &&
            r->state != RequestState::Migrating)
            continue;
        ++r->generated;
        r->note_token(sim_.now());
        if (r->generated >= r->output_tokens) {
            finish_request(r);
        } else if (!blocks_.grow(r->id, r->context_length())) {
            handle_block_exhaustion(r, g);
        }
    }

    if (callbacks.on_step)
        callbacks.on_step();
    pump();
}

// ---------------------------------------------------------------------
// lifecycle helpers
// ---------------------------------------------------------------------

void
Instance::finish_prefill_of(Request *r)
{
    r->prefilled = r->prompt_tokens;
    r->generated = std::max<std::size_t>(r->generated, 1);
    if (r->first_token_time == workload::kNoTime)
        r->first_token_time = sim_.now();
    r->note_token(sim_.now());
    if (callbacks.on_prefill_complete)
        callbacks.on_prefill_complete(r);
}

void
Instance::finish_request(Request *r)
{
    r->finish_time = sim_.now();
    audit::transition(audit_, *r, RequestState::Finished);
    for (auto &grp : groups_)
        grp.remove(r);
    blocks_.release(r->id);
    swap_ready_.erase(r->id);
    if (callbacks.on_finished)
        callbacks.on_finished(r);
}

void
Instance::handle_block_exhaustion(Request *r, std::size_t g)
{
    while (!blocks_.grow(r->id, r->context_length())) {
        if (r->state == RequestState::Migrating) {
            // A migrating request must never be swapped (its KV is mid-
            // copy; the migration manager owns its fate). Un-earn the
            // token whose KV could not be stored and pause decoding;
            // the in-flight migration resumes it on the target.
            --r->generated;
            pause_decoding(r);
            return;
        }
        if (cfg_.swap_enabled) {
            // Victims come from this group or idle groups; busy groups
            // are mid-pass and cannot lose members. Candidates are
            // rebuilt every round: swap_out() removes the victim from
            // the live groups, and a stale snapshot would offer the
            // same victim twice.
            std::vector<DecodeGroup> candidates;
            candidates.push_back(groups_[g]);
            for (std::size_t i = 0; i < groups_.size(); ++i)
                if (i != g && !groups_[i].busy)
                    candidates.push_back(groups_[i]);
            Request *victim = select_swap_victim(candidates, r);
            if (victim == nullptr)
                victim = r;
            if (swap_out(victim)) {
                if (victim == r)
                    return;
                continue;
            }
            // Host pool full: swapping cannot free blocks, fall through.
        }
        // No swap path (disabled, or the host pool is full). Un-earn
        // the token whose KV could not be stored and preempt: release
        // this request's OWN blocks so the remaining members can make
        // progress — keeping them could deadlock the instance when
        // every holder is parked — and requeue at the front for
        // re-admission once capacity frees up (recompute-style
        // preemption; the recompute pass itself is not modeled by the
        // cost layer). Each retry costs at least one decode pass of
        // simulated time, so the loop cannot spin at one instant.
        --r->generated;
        audit::transition(audit_, *r, RequestState::WaitingDecode);
        for (auto &grp : groups_)
            grp.remove(r);
        blocks_.release(r->id);
        decode_q_.push_front(r);
        return;
    }
}

bool
Instance::swap_out(Request *victim)
{
    std::size_t ctx = victim->context_length();
    // Reserve host-pool space FIRST: if the pool is full nothing may
    // change, or a later swap_in would be asked for bytes the pool
    // never accepted.
    if (!swap_.swap_out(victim->id, ctx))
        return false;
    WS_LOG_AT(Debug, cfg_.name, sim_.now())
        << "swap out req " << victim->id << " ctx " << ctx;
    if (trace_) {
        trace_->instant(obs::Category::Scheduler, cfg_.name,
                        "local-scheduler", "swap-out",
                        {obs::num_arg("req", std::uint64_t(victim->id)),
                         obs::num_arg("ctx", std::uint64_t(ctx))});
    }
    blocks_.release(victim->id);
    ++victim->swap_outs;
    audit::transition(audit_, *victim, RequestState::SwappedOut);
    for (auto &grp : groups_)
        grp.remove(victim);
    decode_q_.push_front(victim);
    kvcache::ReqId id = victim->id;
    host_channel_.submit(swap_.bytes_for(ctx), [this, id, e = epoch_] {
        if (e != epoch_)
            return;
        swap_ready_.insert(id);
        pump();
    });
    return true;
}

void
Instance::try_swap_in()
{
    // FCFS among swapped requests: resume the first one in the queue.
    // It need not be the queue front — block holders and parked
    // requests ahead of it are admit_decodes' business.
    Request *r = nullptr;
    for (Request *cand : decode_q_) {
        if (cand->state == RequestState::SwappedOut) {
            r = cand;
            break;
        }
    }
    if (r == nullptr)
        return;
    if (!swap_ready_.count(r->id) || swapping_in_.count(r->id))
        return; // copy-out still in flight (or already inbound)
    std::size_t ctx = r->context_length();
    if (!blocks_.can_allocate(ctx + cfg_.block_size))
        return; // not enough headroom yet
    blocks_.allocate(r->id, ctx);
    swapping_in_.insert(r->id);
    host_channel_.submit(swap_.bytes_for(ctx), [this, r, ctx, e = epoch_] {
        if (e != epoch_)
            return;
        swap_.swap_in(r->id);
        swapping_in_.erase(r->id);
        swap_ready_.erase(r->id);
        audit::transition(audit_, *r, RequestState::WaitingDecode);
        if (trace_) {
            trace_->instant(obs::Category::Scheduler, cfg_.name,
                            "local-scheduler", "swap-in",
                            {obs::num_arg("req", std::uint64_t(r->id)),
                             obs::num_arg("ctx", std::uint64_t(ctx))});
        }
        pump();
    });
}

// ---------------------------------------------------------------------
// migration support
// ---------------------------------------------------------------------

void
Instance::pause_decoding(Request *r)
{
    for (auto &grp : groups_)
        grp.remove(r);
}

void
Instance::release_kv(Request *r)
{
    blocks_.release(r->id);
    pump();
}

bool
Instance::is_decoding(const Request *r) const
{
    for (const auto &grp : groups_)
        if (grp.contains(r))
            return true;
    return false;
}

// ---------------------------------------------------------------------
// fault injection
// ---------------------------------------------------------------------

std::vector<Request *>
Instance::crash()
{
    down_ = true;
    ++epoch_; // in-flight completions are now stale and no-op

    // Victims: everything queued or running HERE. Group members cover
    // the iteration snapshot (a snapshotted request that already left
    // the group is finished or parked in decode_q_). The injector sorts
    // and dedupes, so collection order is irrelevant.
    std::vector<Request *> victims;
    victims.insert(victims.end(), prefill_q_.begin(), prefill_q_.end());
    victims.insert(victims.end(), assist_q_.begin(), assist_q_.end());
    victims.insert(victims.end(), decode_q_.begin(), decode_q_.end());
    for (Request *r : chunk_head_)
        if (r != nullptr)
            victims.push_back(r);
    for (std::size_t s = 0; s < slots_.size(); ++s)
        if (slot_busy_[s])
            victims.insert(victims.end(), slots_[s].requests.begin(),
                           slots_[s].requests.end());
    victims.insert(victims.end(), sbd_batch_.begin(), sbd_batch_.end());
    for (const auto &grp : groups_)
        victims.insert(victims.end(), grp.members.begin(),
                       grp.members.end());
    for (const auto &[g, assists] : hybrid_assists_)
        victims.insert(victims.end(), assists.begin(), assists.end());

    // All on-GPU KV is gone — including blocks held for requests that
    // are not scheduled here (a foreign BackupManager's copies).
    for (kvcache::ReqId id : blocks_.holders())
        blocks_.release(id);
    // The host copy of a preempted request is useless once its
    // scheduling state is lost (recovery restarts it); drop it so the
    // pool ledger stays clean.
    for (kvcache::ReqId id : swap_.holders())
        swap_.drop(id);

    prefill_q_.clear();
    assist_q_.clear();
    decode_q_.clear();
    std::fill(chunk_head_.begin(), chunk_head_.end(), nullptr);
    for (std::size_t s = 0; s < slots_.size(); ++s)
        slots_[s] = PrefillBatch{};
    slot_busy_.assign(slot_busy_.size(), false);
    sbd_batch_.clear();
    sbd_active_ = false;
    sbd_tokens_ = 0;
    for (auto &grp : groups_) {
        grp.members.clear();
        grp.iteration_members.clear();
        grp.busy = false;
    }
    hybrid_assists_.clear();
    group_chunk_.clear();
    swap_ready_.clear();
    swapping_in_.clear();

    WS_LOG_AT(Info, cfg_.name, sim_.now())
        << "crash: " << victims.size() << " victims evicted";
    refresh_utilization();
    return victims;
}

void
Instance::repair()
{
    down_ = false;
    WS_LOG_AT(Info, cfg_.name, sim_.now()) << "repaired";
    pump();
}

// ---------------------------------------------------------------------
// introspection
// ---------------------------------------------------------------------

std::size_t
Instance::waiting_prefill_tokens() const
{
    std::size_t sum = 0;
    for (const Request *r : prefill_q_)
        sum += r->prompt_tokens;
    for (const Request *head : chunk_head_)
        if (head != nullptr)
            sum += head->prompt_tokens - head->prefilled;
    return sum;
}

double
Instance::inflight_prefill_remaining() const
{
    double rem = 0.0;
    for (std::size_t s = 0; s < slots_.size(); ++s)
        if (slot_busy_[s])
            rem += std::max(0.0, slots_[s].expected_end - sim_.now());
    return rem;
}

std::size_t
Instance::assist_tokens_pending() const
{
    std::size_t sum = sbd_active_ ? sbd_tokens_ : 0;
    for (const Request *r : assist_q_)
        sum += r->prompt_tokens;
    return sum;
}

std::size_t
Instance::running_decode_requests() const
{
    std::size_t n = 0;
    for (const auto &grp : groups_)
        n += grp.size();
    return n;
}

std::size_t
Instance::running_decode_context() const
{
    std::size_t n = 0;
    for (const auto &grp : groups_)
        n += grp.sum_context();
    return n;
}

void
Instance::refresh_utilization()
{
    const model::CostModel &cm = sampler_.cost();
    double compute = 0.0, bw = 0.0;
    for (std::size_t s = 0; s < slots_.size(); ++s) {
        if (slot_busy_[s]) {
            compute += cm.prefill_compute_utilization(
                static_cast<double>(slots_[s].total_tokens));
        }
    }
    if (sbd_active_) {
        compute += cm.prefill_compute_utilization(
            static_cast<double>(sbd_tokens_));
    }
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        const DecodeGroup &grp = groups_[g];
        if (!grp.busy)
            continue;
        bw += cm.decode_bandwidth_utilization(
            static_cast<double>(grp.size()),
            static_cast<double>(grp.sum_context()));
        auto it = group_chunk_.find(g);
        if (it != group_chunk_.end()) {
            compute += cm.prefill_compute_utilization(
                static_cast<double>(it->second));
        }
    }
    compute_util_.set_level(sim_.now(), std::min(1.0, compute));
    bw_util_.set_level(sim_.now(), std::min(1.0, bw));
}

double
Instance::mean_compute_utilization()
{
    compute_util_.finalize(sim_.now());
    return compute_util_.mean_utilization();
}

double
Instance::mean_bandwidth_utilization()
{
    bw_util_.finalize(sim_.now());
    return bw_util_.mean_utilization();
}

void
Instance::finalize_stats()
{
    compute_util_.finalize(sim_.now());
    bw_util_.finalize(sim_.now());
}

} // namespace windserve::engine
