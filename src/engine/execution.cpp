#include "engine/execution.hpp"

namespace windserve::engine {

double
ExecutionSampler::jitter()
{
    if (noise_sigma_ <= 0.0)
        return 1.0;
    return rng_.lognormal(0.0, noise_sigma_);
}

double
ExecutionSampler::prefill(double n)
{
    return cost_.prefill_time(n) * jitter();
}

double
ExecutionSampler::decode(double batch, double sum_context)
{
    return cost_.decode_time(batch, sum_context) * jitter();
}

double
ExecutionSampler::hybrid(double n_prefill, double batch, double sum_context)
{
    return cost_.hybrid_time(n_prefill, batch, sum_context) * jitter();
}

double
ExecutionSampler::sbd_prefill(double n)
{
    return cost_.sbd_prefill_time(n) * jitter();
}

double
ExecutionSampler::sbd_decode(double batch, double sum_context)
{
    return cost_.sbd_decode_time(batch, sum_context) * jitter();
}

double
ExecutionSampler::chunked(double chunk, double prefix, double batch,
                          double sum_context)
{
    return cost_.chunked_iteration_time(chunk, prefix, batch, sum_context) *
           jitter();
}

} // namespace windserve::engine
