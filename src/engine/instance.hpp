/**
 * @file
 * A serving instance: one model replica on a TPxPP GPU group.
 *
 * An Instance owns a waiting queue per phase, a paged KV block manager,
 * pipeline-parallel decode groups, and the execution modes the paper
 * compares:
 *  - pure prefill batches (prefill instance steady state),
 *  - continuous-batching decode iterations,
 *  - chunked-prefill hybrid iterations (vLLM baseline; also the prefill
 *    instance whenever migrated decodes are present, §3.3),
 *  - regular hybrid passes (WindServe-no-split ablation),
 *  - stream-based disaggregation (assist prefills in a concurrent
 *    stream on the decode instance, §3.4),
 *  - swap-based preemption to host memory when KV blocks run out.
 *
 * Instances are passive: systems drive them through enqueue_* calls and
 * react through callbacks. pump() is safe to call at any time.
 */
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/batch.hpp"
#include "engine/execution.hpp"
#include "engine/local_scheduler.hpp"
#include "hw/transfer_engine.hpp"
#include "kvcache/block_manager.hpp"
#include "kvcache/swap_pool.hpp"
#include "simcore/simulator.hpp"
#include "simcore/utilization.hpp"

namespace windserve::obs {
class TraceRecorder;
class MetricRegistry;
class Histogram;
}

namespace windserve::engine {

/** What the instance is provisioned for. */
enum class InstanceRole { Prefill, Decode, Colocated };

const char *to_string(InstanceRole role);

/** Static configuration of one instance. */
struct InstanceConfig {
    std::string name = "instance";
    InstanceRole role = InstanceRole::Prefill;
    std::size_t block_size = 16;
    /** Max decoding requests across all pipeline groups. */
    std::size_t max_batch_size = 256;
    /** Token budget of one prefill forward pass. */
    std::size_t max_prefill_tokens = 4096;
    std::size_t max_prefill_requests = 64;
    /** Chunked-prefill chunk size (vLLM default 512). */
    std::size_t chunk_size = 512;
    /** Use chunked prefill whenever prefill and decode jobs co-exist. */
    bool chunked_prefill = false;
    /** Run assist prefills in a separate stream (paper §3.4). */
    bool stream_based_disaggregation = false;
    /** Preempt to host memory on KV exhaustion (vLLM behaviour). */
    bool swap_enabled = true;
    /** Execution-time jitter sigma. */
    double exec_noise_sigma = 0.03;
    /** Host DRAM budget available to this instance's swap pool. */
    double host_memory_bytes = 256e9;
    /**
     * Override the cost-model-derived KV capacity (tokens); 0 keeps the
     * derived value. Used by tests and capacity-sensitivity studies.
     */
    std::size_t kv_capacity_tokens_override = 0;
};

/** Hooks a serving system installs on its instances. */
struct InstanceCallbacks {
    /** Prompt fully processed; first token emitted. */
    std::function<void(Request *)> on_prefill_complete;
    /** Request generated its final token; KV already released. */
    std::function<void(Request *)> on_finished;
    /** An assist prefill could not get KV here; caller must requeue. */
    std::function<void(Request *)> on_assist_bounce;
    /** Fired after every completed pass (coordinator polling hook). */
    std::function<void()> on_step;
    /** Pure prefill pass observed: (tokens, duration). */
    std::function<void(double, double)> on_prefill_observation;
    /** Decode iteration observed: (batch, sum_context, duration). */
    std::function<void(double, double, double)> on_decode_observation;
};

/**
 * One serving instance (see file comment).
 */
class Instance
{
  public:
    /**
     * @param sim        shared simulation kernel
     * @param cfg        instance configuration
     * @param cost       cost model for this (model, gpus, parallelism)
     * @param rng        jitter source, forked per instance
     * @param host_link  GPU<->host path used for KV swapping
     */
    Instance(sim::Simulator &sim, InstanceConfig cfg, model::CostModel cost,
             sim::Rng rng, hw::Link host_link);

    const InstanceConfig &config() const { return cfg_; }
    const model::CostModel &cost() const { return sampler_.cost(); }
    const std::string &name() const { return cfg_.name; }

    InstanceCallbacks callbacks;

    // ------------------------------------------------------------------
    // Request entry points
    // ------------------------------------------------------------------

    /** Add a request to the prefill waiting queue (FCFS). */
    void enqueue_prefill(Request *r);

    /**
     * Add a request to the decode waiting queue. @p kv_resident means
     * its KV already lives in this instance's block manager (assist
     * prefill, colocated prefill, or completed migration).
     */
    void enqueue_decode(Request *r, bool kv_resident);

    /** Dispatch a prefill job to this (decode) instance (Algorithm 1). */
    void enqueue_assist_prefill(Request *r);

    /** Try to start any runnable work. Idempotent. */
    void pump();

    // ------------------------------------------------------------------
    // Migration support (used by transfer::StallFreeMigration)
    // ------------------------------------------------------------------

    /** Stop decoding @p r here (it stays allocated until release_kv). */
    void pause_decoding(Request *r);

    /** Free a request's KV blocks here. */
    void release_kv(Request *r);

    /** True if @p r is currently in a running decode group. */
    bool is_decoding(const Request *r) const;

    // ------------------------------------------------------------------
    // Introspection for the Global Scheduler
    // ------------------------------------------------------------------

    kvcache::BlockManager &blocks() { return blocks_; }
    const kvcache::BlockManager &blocks() const { return blocks_; }
    kvcache::SwapPool &swap_pool() { return swap_; }
    const kvcache::SwapPool &swap_pool() const { return swap_; }

    /** Fraction of KV block capacity in use — the memory-pressure
     *  signal cross-pod balancers route on. */
    double kv_used_fraction() const
    {
        std::size_t total = blocks_.total_blocks();
        if (total == 0)
            return 0.0;
        return static_cast<double>(blocks_.used_blocks()) /
               static_cast<double>(total);
    }

    /** Prompt tokens waiting in the prefill queue (incl. unchunked rest). */
    std::size_t waiting_prefill_tokens() const;

    /** Requests waiting in the prefill queue. */
    std::size_t waiting_prefill_requests() const { return prefill_q_.size(); }

    /** Estimated seconds until in-flight prefill passes finish. */
    double inflight_prefill_remaining() const;

    /** Assist prefill tokens queued or in the SBD stream. */
    std::size_t assist_tokens_pending() const;

    /** Requests waiting for decode admission. */
    std::size_t waiting_decode_requests() const { return decode_q_.size(); }

    /** Decoding requests across all groups. */
    std::size_t running_decode_requests() const;

    /** Sum of context over all running decodes. */
    std::size_t running_decode_context() const;

    /** All running decode groups (for victim selection). */
    const std::vector<DecodeGroup> &groups() const { return groups_; }

    /** True while the SBD prefill stream is active. */
    bool sbd_stream_active() const { return sbd_active_; }

    /** Lifetime swap-out event count (Fig. 1a). */
    std::uint64_t swap_out_events() const { return swap_.swap_out_events(); }

    /** Mean achieved compute utilization (Fig. 2 "Tensor Core"). */
    double mean_compute_utilization();

    /** Mean achieved HBM bandwidth utilization (Fig. 2 "Mem BW"). */
    double mean_bandwidth_utilization();

    /** Close utilization windows at simulation end. */
    void finalize_stats();

    /** Total decode iterations executed. */
    std::uint64_t decode_iterations() const { return decode_iters_; }

    /** Total pure prefill passes executed. */
    std::uint64_t prefill_passes() const { return prefill_passes_; }

    /**
     * Record execution spans (prefill slots, SBD stream, decode groups),
     * local-scheduler instants (batch formation, chunk admission, stream
     * split, swap-out/in) and host-link DMA spans on @p rec. nullptr
     * (the default) disables all emission; the instance name is the
     * trace process.
     */
    void set_trace(obs::TraceRecorder *rec);

    /**
     * Install @p a on this instance and everything it owns (block
     * manager, swap pool, host DMA channel) and route every request
     * state change through it. nullptr (the default) disables auditing
     * with zero behavioural change.
     */
    void set_audit(audit::SimAuditor *a);

    /**
     * Register this instance's telemetry instruments on @p reg: queue
     * depths, batch-occupancy histograms, per-resource busy fractions,
     * KV-block and swap-pool utilization, crash state and lifetime
     * counters. Labels carry `instance="<name>"`. Pull callbacks read
     * live introspection state; the registered histograms become this
     * instance's push endpoints for batch sizes / prefill pass tokens.
     */
    void register_metrics(obs::MetricRegistry &reg);

    // ------------------------------------------------------------------
    // fault injection (fault::FaultInjector)
    // ------------------------------------------------------------------

    /**
     * The instance dies: all on-GPU KV is lost and its blocks freed,
     * host swap-pool residue is dropped, every queued or running
     * request is evicted, and in-flight completion events are
     * invalidated (epoch bump). The instance refuses work until
     * repair(). @return the evicted requests, for re-dispatch; foreign
     * block holders (e.g. backup copies) lose their blocks but are not
     * victims — their owner reconciles them via the crash hook.
     */
    std::vector<Request *> crash();

    /** Bring a crashed instance back up, empty and at full capacity. */
    void repair();

    /** True between crash() and repair(). */
    bool is_down() const { return down_; }

    /** Execution-time multiplier for straggler windows; 1.0 restores
     *  nominal speed. Applies to passes started after the call. */
    void set_slowdown(double factor) { slowdown_ = factor; }
    double slowdown() const { return slowdown_; }

  private:
    void schedule_pump();

    // execution paths
    void try_start_prefill_slots();
    void complete_prefill_batch(std::size_t slot);
    void try_start_sbd_stream();
    void complete_sbd_stream();
    void try_start_group(std::size_t g);
    void complete_group(std::size_t g);
    void try_swap_in();

    // helpers
    bool chunk_mode_active() const;
    void finish_prefill_of(Request *r);
    void finish_request(Request *r);
    void handle_block_exhaustion(Request *r, std::size_t g);
    /** @return false if the host pool rejected the victim (full). */
    bool swap_out(Request *r);
    void refresh_utilization();
    std::size_t max_per_group() const;

    sim::Simulator &sim_;
    InstanceConfig cfg_;
    ExecutionSampler sampler_;
    kvcache::BlockManager blocks_;
    kvcache::SwapPool swap_;
    hw::Channel host_channel_;

    std::deque<Request *> prefill_q_;
    std::deque<Request *> decode_q_;
    std::deque<Request *> assist_q_;

    // pure prefill pipeline slots (one per PP stage)
    std::vector<PrefillBatch> slots_;
    std::vector<bool> slot_busy_;

    // chunked prefill state: one in-flight chunking request per
    // pipeline group, so chunked prefill keeps the PP parallelism that
    // pure prefill slots have (different requests pipeline; chunks of
    // one request stay sequential within its group).
    std::vector<Request *> chunk_head_; ///< per-group chunking request

    // SBD stream
    bool sbd_active_ = false;
    std::vector<Request *> sbd_batch_;
    std::size_t sbd_tokens_ = 0;
    double sbd_end_ = 0.0;

    std::vector<DecodeGroup> groups_;

    // hybrid assist jobs attached to an in-flight group pass
    std::unordered_map<std::size_t, std::vector<Request *>> hybrid_assists_;
    // chunk tokens attached to an in-flight group pass
    std::unordered_map<std::size_t, std::size_t> group_chunk_;

    std::unordered_set<kvcache::ReqId> swap_ready_;   ///< swap-out done
    std::unordered_set<kvcache::ReqId> swapping_in_;  ///< swap-in running

    sim::UtilizationTracker compute_util_;
    sim::UtilizationTracker bw_util_;

    std::uint64_t decode_iters_ = 0;
    std::uint64_t prefill_passes_ = 0;
    bool pump_scheduled_ = false;
    bool down_ = false;
    double slowdown_ = 1.0;
    /** Bumped by crash(); completion events capture it and no-op when
     *  stale, severing the dead incarnation's in-flight work. */
    std::uint64_t epoch_ = 0;
    obs::TraceRecorder *trace_ = nullptr;
    audit::SimAuditor *audit_ = nullptr;

    // telemetry: push histograms (null = off) and precomputed
    // self-profiler source tags for the schedule sites
    obs::Histogram *decode_batch_hist_ = nullptr;
    obs::Histogram *prefill_tokens_hist_ = nullptr;
    std::string src_pump_;
    std::string src_prefill_;
    std::string src_sbd_;
    std::string src_decode_;
};

} // namespace windserve::engine
