/**
 * @file
 * Batch containers used by the per-instance execution engine.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "workload/request.hpp"

namespace windserve::engine {

using workload::Request;

/** A set of requests prefilled together in one forward pass. */
struct PrefillBatch {
    std::vector<Request *> requests;
    /** Sum of prompt tokens still to process across the batch. */
    std::size_t total_tokens = 0;
    /** Simulated completion time, once scheduled. */
    double expected_end = 0.0;
    /** Time the batch started executing. */
    double started = 0.0;

    bool empty() const { return requests.empty(); }
    std::size_t size() const { return requests.size(); }
};

/**
 * One pipeline-parallel micro-batch group of decoding requests.
 *
 * With PP-k an instance runs k groups concurrently: each group's pass
 * traverses all pipeline stages, so per-iteration latency matches the
 * full model while aggregate decode throughput scales with k.
 */
struct DecodeGroup {
    std::vector<Request *> members;
    bool busy = false;
    /** Completion time of the in-flight iteration (valid while busy). */
    double iteration_end = 0.0;
    /**
     * Members participating in the in-flight iteration, snapshotted at
     * pass start. Continuous batching admits waiting requests into
     * `members` at any time — including mid-pass — but only the
     * snapshot earns the pass's token: a mid-pass joiner decodes
     * nothing until the next iteration starts.
     */
    std::vector<Request *> iteration_members;

    /** Sum of current context lengths (the Eq. 2 sumL). */
    std::size_t sum_context() const;
    std::size_t size() const { return members.size(); }
    bool contains(const Request *r) const;
    /** Remove a request; @return true if it was present. */
    bool remove(Request *r);
};

/** Sum of prompt tokens over a span of requests. */
std::size_t total_prompt_tokens(const std::vector<Request *> &requests);

} // namespace windserve::engine
