#include "engine/batch.hpp"

#include <algorithm>

namespace windserve::engine {

std::size_t
DecodeGroup::sum_context() const
{
    std::size_t sum = 0;
    for (const Request *r : members)
        sum += r->context_length();
    return sum;
}

bool
DecodeGroup::contains(const Request *r) const
{
    return std::find(members.begin(), members.end(), r) != members.end();
}

bool
DecodeGroup::remove(Request *r)
{
    auto it = std::find(members.begin(), members.end(), r);
    if (it == members.end())
        return false;
    members.erase(it);
    return true;
}

std::size_t
total_prompt_tokens(const std::vector<Request *> &requests)
{
    std::size_t sum = 0;
    for (const Request *r : requests)
        sum += r->prompt_tokens;
    return sum;
}

} // namespace windserve::engine
