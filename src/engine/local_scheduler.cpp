#include "engine/local_scheduler.hpp"

#include <algorithm>

namespace windserve::engine {

PrefillBatch
form_prefill_batch(std::deque<Request *> &queue,
                   const PrefillBatchLimits &limits,
                   kvcache::BlockManager &blocks)
{
    PrefillBatch batch;
    while (!queue.empty() && batch.size() < limits.max_requests) {
        Request *r = queue.front();
        std::size_t tokens = r->prompt_tokens;
        bool head = batch.empty();
        // The head request may exceed the token budget by itself (it must
        // run eventually); later requests must fit within the budget.
        if (!head && batch.total_tokens + tokens > limits.max_tokens)
            break;
        if (!blocks.can_allocate(tokens))
            break;
    blocks.allocate(r->id, tokens);
        queue.pop_front();
        batch.requests.push_back(r);
        batch.total_tokens += tokens;
        if (batch.total_tokens >= limits.max_tokens)
            break;
    }
    return batch;
}

std::vector<Request *>
admit_decodes(std::deque<Request *> &queue, std::vector<DecodeGroup> &groups,
              std::size_t max_per_group, kvcache::BlockManager &blocks)
{
    std::vector<Request *> admitted;
    // FCFS applies to *allocations*: once an earlier request is waiting
    // on blocks (or on a swap-in), later requests may not allocate past
    // it. Requests that already hold their KV (assist prefill, finished
    // swap-in) are admitted regardless of position — holding them back
    // behind a blocked head can deadlock the instance: the head waits
    // for the holders' blocks while the holders wait for the head.
    bool alloc_blocked = false;
    for (auto it = queue.begin(); it != queue.end();) {
        Request *r = *it;
        if (r->state == workload::RequestState::SwappedOut) {
            // Swap-in (not admission) brings it back; its pending
            // block claim blocks later allocations.
            alloc_blocked = true;
            ++it;
            continue;
        }
        auto smallest = std::min_element(
            groups.begin(), groups.end(),
            [](const DecodeGroup &a, const DecodeGroup &b) {
                return a.size() < b.size();
            });
        if (smallest == groups.end() || smallest->size() >= max_per_group)
            break;
        std::size_t tokens = r->context_length();
        if (!blocks.holds(r->id)) {
            if (alloc_blocked || !blocks.can_allocate(tokens)) {
                alloc_blocked = true;
                ++it;
                continue;
            }
            blocks.allocate(r->id, tokens);
        }
        it = queue.erase(it);
        smallest->members.push_back(r);
        admitted.push_back(r);
    }
    return admitted;
}

Request *
select_swap_victim(const std::vector<DecodeGroup> &groups,
                   const Request *protect)
{
    Request *victim = nullptr;
    for (const auto &g : groups) {
        for (Request *r : g.members) {
            if (r == protect)
                continue;
            if (r->state == workload::RequestState::Migrating)
                continue;
            if (!victim || r->arrival_time > victim->arrival_time)
                victim = r;
        }
    }
    return victim;
}

Request *
select_migration_victim(const std::vector<DecodeGroup> &groups)
{
    Request *victim = nullptr;
    for (const auto &g : groups) {
        for (Request *r : g.members) {
            if (r->state == workload::RequestState::Migrating)
                continue;
            if (!victim || r->context_length() > victim->context_length())
                victim = r;
        }
    }
    return victim;
}

} // namespace windserve::engine
