/**
 * @file
 * FCFS local scheduling policies (paper §3.1: "Each instance of
 * WindServe features a local scheduler responsible for scheduling
 * requests from the waiting queue into the running pipeline following a
 * First-Come-First-Serve order").
 *
 * Pure functions over queues and the block manager so the policies are
 * unit-testable without spinning up a whole instance.
 */
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "engine/batch.hpp"
#include "kvcache/block_manager.hpp"

namespace windserve::engine {

/** Limits applied when forming a prefill batch. */
struct PrefillBatchLimits {
    std::size_t max_tokens = 4096; ///< token budget per forward pass
    std::size_t max_requests = 64;
};

/**
 * Pop a FCFS prefill batch from @p queue, bounded by @p limits and by
 * what @p blocks can hold (each prompt's KV is allocated here).
 * The head request always fits alone if its KV can be allocated;
 * otherwise the batch is empty and the queue untouched.
 */
PrefillBatch form_prefill_batch(std::deque<Request *> &queue,
                                const PrefillBatchLimits &limits,
                                kvcache::BlockManager &blocks);

/**
 * Admit waiting decode requests FCFS into the smallest group while KV
 * for their current context can be allocated and the per-group cap
 * allows. Swapped-out requests are NOT admitted here (they need a
 * swap-in transfer first — the instance handles that asynchronously).
 * @return the admitted requests (already placed into groups with their
 * KV allocated).
 */
std::vector<Request *> admit_decodes(std::deque<Request *> &queue,
                                     std::vector<DecodeGroup> &groups,
                                     std::size_t max_per_group,
                                     kvcache::BlockManager &blocks);

/**
 * Choose a preemption victim for swap-out: the latest-arrived running
 * request (vLLM's policy), excluding @p protect. @return nullptr if no
 * candidate exists.
 */
Request *select_swap_victim(const std::vector<DecodeGroup> &groups,
                            const Request *protect);

/**
 * Choose a Dynamic Rescheduling victim: the LONGEST-context running
 * request (paper §3.3 — "WindServe tends to migrate longer sequences in
 * order to free up more space"), excluding requests already migrating.
 */
Request *select_migration_victim(const std::vector<DecodeGroup> &groups);

} // namespace windserve::engine
