/**
 * @file
 * Iteration-duration sampling: CostModel times plus execution jitter.
 *
 * Real iteration times vary with kernel scheduling, NCCL timing and the
 * Python control plane; the WindServe Profiler regresses over such noisy
 * observations (paper §3.2.1). ExecutionSampler injects multiplicative
 * lognormal jitter so the reproduction's Profiler faces the same
 * estimation problem the paper's does.
 */
#pragma once

#include "model/cost_model.hpp"
#include "simcore/rng.hpp"

namespace windserve::engine {

/** Samples noisy iteration durations from the analytic cost model. */
class ExecutionSampler
{
  public:
    /**
     * @param cost  ground-truth cost model of the instance
     * @param rng   jitter source (forked from the experiment Rng)
     * @param noise_sigma sigma of the lognormal multiplicative jitter
     */
    ExecutionSampler(model::CostModel cost, sim::Rng rng,
                     double noise_sigma = 0.03)
        : cost_(std::move(cost)), rng_(std::move(rng)),
          noise_sigma_(noise_sigma)
    {}

    const model::CostModel &cost() const { return cost_; }

    /** Noisy duration of a full prefill pass over @p n tokens. */
    double prefill(double n);

    /** Noisy duration of a decode iteration. */
    double decode(double batch, double sum_context);

    /** Noisy duration of a regular hybrid pass. */
    double hybrid(double n_prefill, double batch, double sum_context);

    /** Noisy SBD prefill-stream duration. */
    double sbd_prefill(double n);

    /** Noisy SBD decode iteration duration. */
    double sbd_decode(double batch, double sum_context);

    /** Noisy chunked-prefill piggyback iteration duration. */
    double chunked(double chunk, double prefix, double batch,
                   double sum_context);

  private:
    double jitter();

    model::CostModel cost_;
    sim::Rng rng_;
    double noise_sigma_;
};

} // namespace windserve::engine
