#include "engine/serving_system.hpp"

namespace windserve::engine {

RunResult
ServingSystem::run(const std::vector<workload::Request> &trace,
                   const metrics::SloSpec &slo, double horizon)
{
    replay(trace, horizon);

    RunResult out;
    out.requests = take_requests();
    out.metrics = metrics::Collector(slo).collect(out.requests);
    fill_system_metrics(out.metrics);
    out.num_gpus = num_gpus();
    return out;
}

} // namespace windserve::engine
