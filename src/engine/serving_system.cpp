#include "engine/serving_system.hpp"

#include <algorithm>

#include "fault/fault_injector.hpp"
#include "obs/trace_recorder.hpp"
#include "simcore/simulator.hpp"

namespace windserve::engine {

ServingSystem::ServingSystem() = default;
ServingSystem::~ServingSystem() = default;

std::uint64_t
ServingSystem::total_events_fired()
{
    return simulator().events_fired();
}

void
ServingSystem::link_attachments()
{
    if (telemetry_ && faults_ && !fault_counters_registered_) {
        // The chaos-engine counters only exist once BOTH attachments do,
        // whichever attached first.
        fault_counters_registered_ = true;
        obs::MetricRegistry &reg = telemetry_->registry();
        const fault::FaultInjector *inj = faults_.get();
        const std::string help =
            "Cumulative fault-engine events by kind";
        reg.counter("ws_fault_events_total", "kind=\"instance_crash\"",
                    [inj] {
                        return static_cast<double>(
                            inj->instance_crashes());
                    },
                    help);
        reg.counter("ws_fault_events_total", "kind=\"node_crash\"",
                    [inj] {
                        return static_cast<double>(inj->node_crashes());
                    },
                    help);
        reg.counter("ws_fault_events_total", "kind=\"link_outage\"",
                    [inj] {
                        return static_cast<double>(inj->link_outages());
                    },
                    help);
        reg.counter("ws_fault_events_total", "kind=\"straggler_window\"",
                    [inj] {
                        return static_cast<double>(
                            inj->straggler_windows());
                    },
                    help);
        reg.counter("ws_fault_events_total", "kind=\"redispatch\"",
                    [inj] {
                        return static_cast<double>(inj->redispatches());
                    },
                    help);
        reg.counter("ws_fault_events_total", "kind=\"retry\"",
                    [inj] {
                        return static_cast<double>(inj->retries());
                    },
                    help);
        reg.counter("ws_fault_events_total", "kind=\"abort\"",
                    [inj] {
                        return static_cast<double>(inj->aborts());
                    },
                    help);
        reg.counter("ws_fault_events_total", "kind=\"transfer_timeout\"",
                    [inj] {
                        return static_cast<double>(
                            inj->transfer_timeouts());
                    },
                    help);
        reg.counter("ws_fault_events_total", "kind=\"recovery\"",
                    [inj] {
                        return static_cast<double>(inj->recoveries());
                    },
                    help);
    }
    if (!faults_)
        return;
    if (audit_) {
        faults_->set_audit(audit_.get());
        audit_->set_faults_enabled(true);
    }
    if (trace_)
        faults_->set_trace(trace_.get());
}

obs::Telemetry *
ServingSystem::attach_telemetry(const obs::TelemetryConfig &cfg)
{
    if (!telemetry_) {
        telemetry_ = std::make_unique<obs::Telemetry>(cfg);
        wire_telemetry(*telemetry_);
        link_attachments();
        // Arm BEFORE the other attachments so the self-profiler wraps
        // every event they schedule (notably the fault-plan arming).
        telemetry_->arm(simulator());
    }
    return telemetry_.get();
}

obs::TraceRecorder *
ServingSystem::attach_trace()
{
    if (!trace_) {
        trace_ = std::make_unique<obs::TraceRecorder>(simulator());
        wire_trace(*trace_);
        link_attachments();
    }
    return trace_.get();
}

audit::SimAuditor *
ServingSystem::attach_audit(audit::AuditConfig cfg)
{
    if (!audit_) {
        audit_ = std::make_unique<audit::SimAuditor>(simulator(),
                                                     std::move(cfg));
        wire_audit(*audit_);
        link_attachments();
    }
    return audit_.get();
}

fault::FaultInjector *
ServingSystem::attach_faults(const fault::FaultConfig &cfg)
{
    if (!faults_) {
        faults_ = std::make_unique<fault::FaultInjector>(
            simulator(), fault::FaultPlan::generate(cfg));
        // Cross-link before wire_faults(): recovery hooks registered by
        // the system may fire audit/trace callbacks from day one.
        link_attachments();
        wire_faults(*faults_);
        faults_->arm();
    }
    return faults_.get();
}

RunResult
ServingSystem::run(const std::vector<workload::Request> &trace,
                   const RunOptions &opts)
{
    if (opts.telemetry)
        attach_telemetry(*opts.telemetry);
    if (opts.tracing)
        attach_trace();
    if (opts.audit)
        attach_audit(*opts.audit);
    if (opts.faults) {
        fault::FaultConfig fc = *opts.faults;
        if (fc.horizon <= 0.0)
            fc.horizon = opts.horizon;
        attach_faults(fc);
    }

    run_intra_threads_ = std::max<std::size_t>(opts.intra_threads, 1);
    replay(trace, opts.horizon);

    if (telemetry_)
        telemetry_->finish(simulator().now());

    RunResult out;
    out.requests = take_requests();
    out.metrics = metrics::Collector(opts.slo).collect(out.requests);
    fill_system_metrics(out.metrics);
    if (faults_) {
        out.metrics.instance_crashes = faults_->instance_crashes();
        out.metrics.link_outages = faults_->link_outages();
        out.metrics.straggler_windows = faults_->straggler_windows();
        out.metrics.fault_redispatches = faults_->redispatches();
        out.metrics.fault_retries = faults_->retries();
        out.metrics.fault_aborts = faults_->aborts();
        out.metrics.transfer_timeouts = faults_->transfer_timeouts();
        out.metrics.fault_recoveries = faults_->recoveries();
        out.metrics.recovery_latency = faults_->recovery_latency();
    }
    out.num_gpus = num_gpus();
    if (audit_) {
        audit_->finish_run(out.requests, out.metrics.num_finished,
                           out.metrics.num_unfinished);
    }
    if (trace_) {
        // Lifecycle spans are derived from the final timestamps, after
        // the replay: emitted in request order, so the trace is a pure
        // function of (config, workload) regardless of thread count.
        for (const auto &r : out.requests)
            trace_->record_request_lifecycle(r);
        // Sampled metric series render as Perfetto counter tracks
        // alongside the spans.
        if (telemetry_)
            telemetry_->registry().merge_counter_tracks(*trace_);
    }
    return out;
}

RunResult
ServingSystem::run(const std::vector<workload::Request> &trace,
                   const metrics::SloSpec &slo, double horizon)
{
    RunOptions opts;
    opts.slo = slo;
    opts.horizon = horizon;
    return run(trace, opts);
}

} // namespace windserve::engine
