#include "engine/serving_system.hpp"

#include "fault/fault_injector.hpp"
#include "obs/trace_recorder.hpp"

namespace windserve::engine {

ServingSystem::ServingSystem() = default;
ServingSystem::~ServingSystem() = default;

void
ServingSystem::link_attachments()
{
    if (!faults_)
        return;
    if (audit_) {
        faults_->set_audit(audit_.get());
        audit_->set_faults_enabled(true);
    }
    if (trace_)
        faults_->set_trace(trace_.get());
}

obs::TraceRecorder *
ServingSystem::attach_trace()
{
    if (!trace_) {
        trace_ = std::make_unique<obs::TraceRecorder>(simulator());
        wire_trace(*trace_);
        link_attachments();
    }
    return trace_.get();
}

audit::SimAuditor *
ServingSystem::attach_audit(audit::AuditConfig cfg)
{
    if (!audit_) {
        audit_ = std::make_unique<audit::SimAuditor>(simulator(),
                                                     std::move(cfg));
        wire_audit(*audit_);
        link_attachments();
    }
    return audit_.get();
}

fault::FaultInjector *
ServingSystem::attach_faults(const fault::FaultConfig &cfg)
{
    if (!faults_) {
        faults_ = std::make_unique<fault::FaultInjector>(
            simulator(), fault::FaultPlan::generate(cfg));
        // Cross-link before wire_faults(): recovery hooks registered by
        // the system may fire audit/trace callbacks from day one.
        link_attachments();
        wire_faults(*faults_);
        faults_->arm();
    }
    return faults_.get();
}

RunResult
ServingSystem::run(const std::vector<workload::Request> &trace,
                   const RunOptions &opts)
{
    if (opts.tracing)
        attach_trace();
    if (opts.audit)
        attach_audit(*opts.audit);
    if (opts.faults) {
        fault::FaultConfig fc = *opts.faults;
        if (fc.horizon <= 0.0)
            fc.horizon = opts.horizon;
        attach_faults(fc);
    }

    replay(trace, opts.horizon);

    RunResult out;
    out.requests = take_requests();
    out.metrics = metrics::Collector(opts.slo).collect(out.requests);
    fill_system_metrics(out.metrics);
    if (faults_) {
        out.metrics.instance_crashes = faults_->instance_crashes();
        out.metrics.link_outages = faults_->link_outages();
        out.metrics.straggler_windows = faults_->straggler_windows();
        out.metrics.fault_redispatches = faults_->redispatches();
        out.metrics.fault_retries = faults_->retries();
        out.metrics.fault_aborts = faults_->aborts();
        out.metrics.transfer_timeouts = faults_->transfer_timeouts();
        out.metrics.fault_recoveries = faults_->recoveries();
        out.metrics.recovery_latency = faults_->recovery_latency();
    }
    out.num_gpus = num_gpus();
    if (audit_) {
        audit_->finish_run(out.requests, out.metrics.num_finished,
                           out.metrics.num_unfinished);
    }
    if (trace_) {
        // Lifecycle spans are derived from the final timestamps, after
        // the replay: emitted in request order, so the trace is a pure
        // function of (config, workload) regardless of thread count.
        for (const auto &r : out.requests)
            trace_->record_request_lifecycle(r);
    }
    return out;
}

RunResult
ServingSystem::run(const std::vector<workload::Request> &trace,
                   const metrics::SloSpec &slo, double horizon)
{
    RunOptions opts;
    opts.slo = slo;
    opts.horizon = horizon;
    return run(trace, opts);
}

} // namespace windserve::engine
