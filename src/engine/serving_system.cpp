#include "engine/serving_system.hpp"

#include "obs/trace_recorder.hpp"

namespace windserve::engine {

ServingSystem::ServingSystem() = default;
ServingSystem::~ServingSystem() = default;

obs::TraceRecorder *
ServingSystem::enable_tracing()
{
    if (!trace_) {
        trace_ = std::make_unique<obs::TraceRecorder>(simulator());
        wire_trace(*trace_);
    }
    return trace_.get();
}

audit::SimAuditor *
ServingSystem::enable_audit(audit::AuditConfig cfg)
{
    if (!audit_) {
        audit_ = std::make_unique<audit::SimAuditor>(simulator(),
                                                     std::move(cfg));
        wire_audit(*audit_);
    }
    return audit_.get();
}

RunResult
ServingSystem::run(const std::vector<workload::Request> &trace,
                   const metrics::SloSpec &slo, double horizon)
{
    replay(trace, horizon);

    RunResult out;
    out.requests = take_requests();
    out.metrics = metrics::Collector(slo).collect(out.requests);
    fill_system_metrics(out.metrics);
    out.num_gpus = num_gpus();
    if (audit_) {
        audit_->finish_run(out.requests, out.metrics.num_finished,
                           out.metrics.num_unfinished);
    }
    if (trace_) {
        // Lifecycle spans are derived from the final timestamps, after
        // the replay: emitted in request order, so the trace is a pure
        // function of (config, workload) regardless of thread count.
        for (const auto &r : out.requests)
            trace_->record_request_lifecycle(r);
    }
    return out;
}

} // namespace windserve::engine
