/**
 * @file
 * Common interface of the serving systems under evaluation
 * (WindServe, DistServe, co-located vLLM).
 *
 * A system owns its Simulator, instances and interconnect channels,
 * replays a workload trace to completion, and exposes the per-request
 * results plus instance-level utilization for the metrics layer.
 */
#pragma once

#include <string>
#include <vector>

#include "metrics/collector.hpp"
#include "workload/request.hpp"

namespace windserve::engine {

/** Abstract serving system driven by the experiment harness. */
class ServingSystem
{
  public:
    virtual ~ServingSystem() = default;

    /** Human-readable system name for tables. */
    virtual std::string name() const = 0;

    /**
     * Replay @p trace (sorted by arrival) until every request finishes
     * or @p horizon simulated seconds elapse. Unfinished requests remain
     * in their last state and count against SLO attainment.
     */
    virtual void run(const std::vector<workload::Request> &trace,
                     double horizon = 7200.0) = 0;

    /** Per-request results after run(). */
    virtual const std::vector<workload::Request> &requests() const = 0;

    /** Fill instance-level utilization/counters into @p m. */
    virtual void fill_system_metrics(metrics::RunMetrics &m) = 0;

    /** GPUs this deployment occupies (for per-GPU rate normalisation). */
    virtual std::size_t num_gpus() const = 0;
};

} // namespace windserve::engine
