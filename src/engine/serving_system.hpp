/**
 * @file
 * Common interface of the serving systems under evaluation
 * (WindServe, DistServe, co-located vLLM).
 *
 * A system owns its Simulator, instances and interconnect channels,
 * replays a workload trace to completion, and hands the full outcome
 * back as one immutable RunResult value. Nothing about a finished run
 * is read through the system object afterwards, so a result can be
 * moved across threads (harness/parallel.hpp) without touching the
 * world that produced it.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "audit/sim_auditor.hpp"
#include "metrics/collector.hpp"
#include "workload/request.hpp"

namespace windserve::obs {
class TraceRecorder;
}
namespace windserve::sim {
class Simulator;
}
namespace windserve::fault {
class FaultInjector;
struct FaultConfig;
}

namespace windserve::engine {

/**
 * Complete outcome of one serving-system run: the per-request results,
 * the aggregated metrics, and the GPU footprint used for per-GPU rate
 * normalisation. A plain value object — copyable, movable, and safe to
 * hand to another thread.
 */
struct RunResult {
    std::vector<workload::Request> requests;
    metrics::RunMetrics metrics;
    std::size_t num_gpus = 0;
};

/** Abstract serving system driven by the experiment harness. */
class ServingSystem
{
  public:
    virtual ~ServingSystem();

    /** Human-readable system name for tables. */
    virtual std::string name() const = 0;

    /** GPUs this deployment occupies (for per-GPU rate normalisation). */
    virtual std::size_t num_gpus() const = 0;

    /** The simulation kernel this deployment runs on. */
    virtual sim::Simulator &simulator() = 0;

    /**
     * Attach a per-run TraceRecorder (before run()). The recorder is
     * owned by this system — no global state — and every component is
     * wired to it via wire_trace(). Idempotent; returns the recorder.
     */
    obs::TraceRecorder *enable_tracing();

    /** The attached recorder, or nullptr when tracing is off. */
    obs::TraceRecorder *trace() { return trace_.get(); }
    const obs::TraceRecorder *trace() const { return trace_.get(); }

    /**
     * Attach a per-run SimAuditor (before run()). Mirrors
     * enable_tracing(): the auditor is owned by this system and every
     * component is wired to it via wire_audit(). With auditing off the
     * run is byte-identical to an unaudited one. Idempotent (@p cfg is
     * ignored on repeat calls); returns the auditor.
     */
    audit::SimAuditor *enable_audit(audit::AuditConfig cfg = {});

    /** The attached auditor, or nullptr when auditing is off. */
    audit::SimAuditor *audit() { return audit_.get(); }
    const audit::SimAuditor *audit() const { return audit_.get(); }

    /**
     * Attach a per-run chaos engine (before run()). Mirrors
     * enable_tracing()/enable_audit(): the injector is owned by this
     * system, the fault schedule is derived deterministically from
     * @p cfg, and every target is wired via wire_faults(), which also
     * arms the schedule on the simulator. With faults off — or with an
     * empty schedule — the run is byte-identical to a fault-free one.
     * Idempotent (@p cfg is ignored on repeat calls); returns the
     * injector.
     */
    fault::FaultInjector *enable_faults(const fault::FaultConfig &cfg);

    /** The attached injector, or nullptr when faults are off. */
    fault::FaultInjector *faults() { return faults_.get(); }
    const fault::FaultInjector *faults() const { return faults_.get(); }

    /**
     * Replay @p trace (sorted by arrival) until every request finishes
     * or @p horizon simulated seconds elapse, then collect metrics
     * against @p slo. Unfinished requests remain in their last state
     * and count against SLO attainment.
     *
     * One-shot: a system instance models a single deployment lifetime;
     * the per-request results are moved into the returned value.
     */
    RunResult run(const std::vector<workload::Request> &trace,
                  const metrics::SloSpec &slo = {},
                  double horizon = 7200.0);

  protected:
    // Out-of-line so std::unique_ptr<TraceRecorder> never needs the
    // complete recorder type in derived translation units.
    ServingSystem();

    /** Replay the trace on the simulation kernel (system-specific). */
    virtual void replay(const std::vector<workload::Request> &trace,
                        double horizon) = 0;

    /** Fill instance-level utilization/counters into @p m. */
    virtual void fill_system_metrics(metrics::RunMetrics &m) = 0;

    /** Surrender ownership of the per-request results after replay. */
    virtual std::vector<workload::Request> take_requests() = 0;

    /** Point every traced component at @p rec (system-specific). */
    virtual void wire_trace(obs::TraceRecorder &rec) { (void)rec; }

    /** Point every audited component at @p a (system-specific). */
    virtual void wire_audit(audit::SimAuditor &a) { (void)a; }

    /**
     * Register fault targets (instances, channels) and recovery hooks
     * on @p inj (system-specific). Called before the schedule is armed.
     */
    virtual void wire_faults(fault::FaultInjector &inj) { (void)inj; }

  private:
    std::unique_ptr<obs::TraceRecorder> trace_;
    std::unique_ptr<audit::SimAuditor> audit_;
    std::unique_ptr<fault::FaultInjector> faults_;
};

} // namespace windserve::engine
