/**
 * @file
 * Common interface of the serving systems under evaluation
 * (WindServe, DistServe, co-located vLLM).
 *
 * A system owns its Simulator, instances and interconnect channels,
 * replays a workload trace to completion, and hands the full outcome
 * back as one immutable RunResult value. Nothing about a finished run
 * is read through the system object afterwards, so a result can be
 * moved across threads (harness/parallel.hpp) without touching the
 * world that produced it.
 */
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "audit/sim_auditor.hpp"
#include "fault/fault_plan.hpp"
#include "metrics/collector.hpp"
#include "obs/telemetry.hpp"
#include "workload/request.hpp"

namespace windserve::obs {
class TraceRecorder;
}
namespace windserve::sim {
class Simulator;
}
namespace windserve::fault {
class FaultInjector;
}

namespace windserve::engine {

/**
 * Complete outcome of one serving-system run: the per-request results,
 * the aggregated metrics, and the GPU footprint used for per-GPU rate
 * normalisation. A plain value object — copyable, movable, and safe to
 * hand to another thread.
 */
struct RunResult {
    std::vector<workload::Request> requests;
    metrics::RunMetrics metrics;
    std::size_t num_gpus = 0;
};

/**
 * Everything that shapes one run() call: the SLO the metrics are
 * collected against, the horizon, and the optional per-run attachments
 * (trace recorder, invariant auditor, chaos engine). One struct instead
 * of three copy-pasted enable_*() opt-ins; each attachment is created,
 * wired, and cross-linked by run() itself, in a fixed order, so a
 * configured run is a pure function of (RunOptions, trace, seed).
 *
 * An attachment left disabled keeps the run byte-identical to a bare
 * one — tracing, auditing, and an empty fault schedule are all free
 * when off.
 */
struct RunOptions {
    /** SLO targets the collected metrics are scored against. */
    metrics::SloSpec slo{};
    /** Simulated-seconds budget for the replay. */
    double horizon = 7200.0;
    /** Attach a per-run obs::TraceRecorder (reachable via trace()). */
    bool tracing = false;
    /** Attach a fail-fast audit::SimAuditor with this config. */
    std::optional<audit::AuditConfig> audit{};
    /** Attach a fault::FaultInjector with this chaos schedule. A config
     *  with horizon <= 0 inherits the run's horizon. */
    std::optional<fault::FaultConfig> faults{};
    /** Attach per-run obs::Telemetry (metric sampling, scheduler
     *  decision journal, event-pump self-profiler). */
    std::optional<obs::TelemetryConfig> telemetry{};
    /**
     * Intra-run worker threads for systems that partition a single
     * replay into logical processes (sim::LpScheduler) — today the
     * multi-pod ClusterServeSystem; every other system pumps one queue
     * and ignores the value. The parallel engine's contract: any
     * thread count (including 1) produces byte-identical metrics,
     * traces, telemetry exports, and events_fired.
     */
    std::size_t intra_threads = 1;
};

/** Abstract serving system driven by the experiment harness. */
class ServingSystem
{
  public:
    virtual ~ServingSystem();

    /** Human-readable system name for tables. */
    virtual std::string name() const = 0;

    /** GPUs this deployment occupies (for per-GPU rate normalisation). */
    virtual std::size_t num_gpus() const = 0;

    /** The simulation kernel this deployment runs on. For partitioned
     *  systems (intra-run parallelism) this is the HUB simulator. */
    virtual sim::Simulator &simulator() = 0;

    /** Events fired across ALL of the run's simulators — equal to
     *  simulator().events_fired() except for partitioned systems,
     *  which add their logical processes' queues. */
    virtual std::uint64_t total_events_fired();

    /** The attached recorder, or nullptr when tracing is off. */
    obs::TraceRecorder *trace() { return trace_.get(); }
    const obs::TraceRecorder *trace() const { return trace_.get(); }

    /** The attached auditor, or nullptr when auditing is off. */
    audit::SimAuditor *audit() { return audit_.get(); }
    const audit::SimAuditor *audit() const { return audit_.get(); }

    /** The attached injector, or nullptr when faults are off. */
    fault::FaultInjector *faults() { return faults_.get(); }
    const fault::FaultInjector *faults() const { return faults_.get(); }

    /** The attached telemetry, or nullptr when telemetry is off. */
    obs::Telemetry *telemetry() { return telemetry_.get(); }
    const obs::Telemetry *telemetry() const { return telemetry_.get(); }

    /**
     * Replay @p trace (sorted by arrival) until every request finishes
     * or the horizon elapses, then collect metrics against the SLO.
     * Attachments requested in @p opts are created and wired first —
     * telemetry, then tracing, then audit, then faults, the fixed
     * cross-linking order (telemetry leads so the self-profiler wraps
     * every event the later attachments schedule). Unfinished requests
     * remain in their last state and count against SLO attainment.
     *
     * One-shot: a system instance models a single deployment lifetime;
     * the per-request results are moved into the returned value.
     */
    RunResult run(const std::vector<workload::Request> &trace,
                  const RunOptions &opts);

    /** Convenience overload of run() for bare runs (no attachments). */
    RunResult run(const std::vector<workload::Request> &trace,
                  const metrics::SloSpec &slo = {},
                  double horizon = 7200.0);

  protected:
    // Out-of-line so std::unique_ptr<TraceRecorder> never needs the
    // complete recorder type in derived translation units.
    ServingSystem();

    /** Replay the trace on the simulation kernel (system-specific). */
    virtual void replay(const std::vector<workload::Request> &trace,
                        double horizon) = 0;

    /** RunOptions::intra_threads, stashed by run() before replay() for
     *  systems that partition the replay across worker threads. */
    std::size_t run_intra_threads_ = 1;

    /** Fill instance-level utilization/counters into @p m. */
    virtual void fill_system_metrics(metrics::RunMetrics &m) = 0;

    /** Surrender ownership of the per-request results after replay. */
    virtual std::vector<workload::Request> take_requests() = 0;

    /** Point every traced component at @p rec (system-specific). */
    virtual void wire_trace(obs::TraceRecorder &rec) { (void)rec; }

    /** Point every audited component at @p a (system-specific). */
    virtual void wire_audit(audit::SimAuditor &a) { (void)a; }

    /**
     * Register fault targets (instances, channels) and recovery hooks
     * on @p inj (system-specific). Called before the schedule is armed.
     */
    virtual void wire_faults(fault::FaultInjector &inj) { (void)inj; }

    /**
     * Register the system's instruments on @p t's MetricRegistry and
     * hand the decision journal to the scheduler (system-specific).
     * Called before the sampler is armed and before replay.
     */
    virtual void wire_telemetry(obs::Telemetry &t) { (void)t; }

  private:
    /**
     * The attachment internals behind the RunOptions path. Each
     * attaches its component once (idempotent), wires it into the
     * system via the matching wire_*() hook, and refreshes the
     * cross-links between attachments.
     */
    obs::Telemetry *attach_telemetry(const obs::TelemetryConfig &cfg);
    obs::TraceRecorder *attach_trace();
    audit::SimAuditor *attach_audit(audit::AuditConfig cfg);
    fault::FaultInjector *attach_faults(const fault::FaultConfig &cfg);

    /** Point the attachments at each other (idempotent): the injector
     *  reports into the recorder, the auditor, and the telemetry's
     *  fault-counter instruments; the auditor relaxes its fatal-crash
     *  checks once faults are expected. */
    void link_attachments();

    std::unique_ptr<obs::Telemetry> telemetry_;
    std::unique_ptr<obs::TraceRecorder> trace_;
    std::unique_ptr<audit::SimAuditor> audit_;
    std::unique_ptr<fault::FaultInjector> faults_;
    bool fault_counters_registered_ = false;
};

} // namespace windserve::engine
