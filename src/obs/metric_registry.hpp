/**
 * @file
 * Sim-time metrics: typed instruments sampled into time series.
 *
 * A MetricRegistry holds three instrument kinds:
 *  - gauges: pull callbacks read on every sample tick (queue depth, KV
 *    occupancy, link bytes in flight, busy fraction, up/down state);
 *  - counters: pull callbacks returning a monotone cumulative count
 *    (iterations, swap events, aborts) sampled the same way;
 *  - histograms: push instruments with log-spaced buckets (decode batch
 *    sizes, prefill pass tokens), accumulated over the whole run.
 *
 * Sampling is driven by the owning run (obs::Telemetry hooks the
 * Simulator's batch boundary), so a sample at tick τ reflects the state
 * after every event with timestamp <= τ — a pure function of the
 * simulation, byte-identical at any `--jobs N`.
 *
 * Export targets:
 *  - prometheus_text(): Prometheus exposition format (final values;
 *    histograms with cumulative `_bucket{le=...}` plus `_sum`/`_count`);
 *  - csv(): the sampled time series in long form
 *    (`time,family,labels,value`);
 *  - merge_counter_tracks(): replay every sample as Chrome-trace
 *    counter events so Perfetto renders utilization curves alongside
 *    the span trace.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace windserve::obs {

class TraceRecorder;

/**
 * Log-bucketed histogram: bucket upper bounds grow geometrically from
 * `first_bound` by `growth`, with a final +inf bucket. observe() is a
 * branch-light loop over <= 64 bounds; bucket boundaries are INCLUSIVE
 * upper bounds (Prometheus `le` semantics: a value equal to a bound
 * lands in that bound's bucket).
 */
class Histogram
{
  public:
    struct Options {
        double first_bound = 1.0; ///< upper bound of the first bucket
        double growth = 2.0;      ///< geometric bound growth (> 1)
        std::size_t num_buckets = 16; ///< finite buckets (then +inf)
    };

    explicit Histogram(Options o);

    /** Record one observation (negative values clamp into bucket 0). */
    void observe(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    /** Finite upper bounds, ascending (size num_buckets). */
    const std::vector<double> &bounds() const { return bounds_; }

    /** Per-bucket counts; index bounds().size() is the +inf bucket. */
    const std::vector<std::uint64_t> &bucket_counts() const
    {
        return counts_;
    }

    /** Index of the bucket @p v falls into (last = overflow). */
    std::size_t bucket_index(double v) const;

  private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_; ///< bounds_.size() + 1 entries
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/** See file comment. */
class MetricRegistry
{
  public:
    /** Pull callback of a gauge/counter instrument. */
    using Pull = std::function<double()>;

    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /**
     * Register a gauge under @p family with a preformatted Prometheus
     * label set (e.g. `instance="decode",queue="prefill"`; empty for
     * none). @p help is attached to the family on first registration.
     */
    void gauge(std::string family, std::string labels, Pull pull,
               std::string help = "");

    /** Register a monotone cumulative counter (same shape as gauge()). */
    void counter(std::string family, std::string labels, Pull pull,
                 std::string help = "");

    /**
     * Register a histogram; the returned pointer stays valid for the
     * registry's lifetime and is the push endpoint for observations.
     */
    Histogram *histogram(std::string family, std::string labels,
                         Histogram::Options opts, std::string help = "");

    /** Sample every pull instrument at sim time @p t (appends one row
     *  to each series). Ticks must be strictly increasing. */
    void sample(double t);

    // ------------------------------------------------------------------
    // introspection (tests, queries)
    // ------------------------------------------------------------------

    std::size_t num_samples() const { return times_.size(); }
    std::size_t num_instruments() const { return instruments_.size(); }
    std::size_t num_families() const;
    const std::vector<double> &sample_times() const { return times_; }

    /** Sampled series of the instrument registered under
     *  (family, labels); throws std::out_of_range when unknown. */
    const std::vector<double> &series(const std::string &family,
                                      const std::string &labels) const;

    /** Last sampled value (or a live pull when never sampled). */
    double last_value(const std::string &family,
                      const std::string &labels) const;

    // ------------------------------------------------------------------
    // exporters
    // ------------------------------------------------------------------

    /** Prometheus exposition text (final values, HELP/TYPE per family). */
    std::string prometheus_text() const;

    /** Sampled time series, long form: `time,family,labels,value`. */
    std::string csv() const;

    /** Replay every sample as counter events on @p rec (process
     *  "telemetry"), giving Perfetto counter tracks next to the spans. */
    void merge_counter_tracks(TraceRecorder &rec) const;

  private:
    enum class Kind { Gauge, Counter, Hist };

    struct Instrument {
        Kind kind;
        std::string family;
        std::string labels;
        Pull pull;                       ///< gauge/counter
        std::unique_ptr<Histogram> hist; ///< histogram
        std::vector<double> values;      ///< sampled series
    };

    struct Family {
        std::string name;
        std::string help;
        Kind kind;
    };

    const Instrument *find(const std::string &family,
                           const std::string &labels) const;
    void note_family(const std::string &family, const std::string &help,
                     Kind kind);

    std::vector<Instrument> instruments_; ///< registration order
    std::vector<Family> families_;        ///< first-seen order
    std::vector<double> times_;
};

} // namespace windserve::obs
