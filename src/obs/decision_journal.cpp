#include "obs/decision_journal.hpp"

#include <algorithm>
#include <cstdio>

namespace windserve::obs {

void
DecisionJournal::merge_shards(const std::vector<DecisionJournal *> &shards)
{
    // Stable sort on time alone == a k-way merge with (existing
    // entries, shard 0, shard 1, ...) as the tie-break, because every
    // source is individually monotone in time.
    for (DecisionJournal *s : shards) {
        entries_.reserve(entries_.size() + s->entries_.size());
        for (Decision &d : s->entries_)
            entries_.push_back(std::move(d));
        s->entries_.clear();
    }
    std::stable_sort(entries_.begin(), entries_.end(),
                     [](const Decision &a, const Decision &b) {
                         return a.time < b.time;
                     });
}

const char *
to_string(DecisionKind k)
{
    switch (k) {
      case DecisionKind::Dispatch:
        return "dispatch";
      case DecisionKind::Reschedule:
        return "reschedule";
      case DecisionKind::Redispatch:
        return "redispatch";
      case DecisionKind::Failover:
        return "failover";
    }
    return "unknown";
}

namespace {

std::string
fmt_num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    for (int prec = 1; prec < 17; ++prec) {
        char probe[32];
        std::snprintf(probe, sizeof probe, "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(probe, "%lf", &back);
        if (back == v)
            return probe;
    }
    return buf;
}

std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

std::size_t
DecisionJournal::count(DecisionKind k) const
{
    std::size_t n = 0;
    for (const Decision &d : entries_)
        if (d.kind == k)
            ++n;
    return n;
}

std::vector<const Decision *>
DecisionJournal::for_request(std::uint64_t request) const
{
    std::vector<const Decision *> out;
    for (const Decision &d : entries_)
        if (d.request == request)
            out.push_back(&d);
    return out;
}

std::string
DecisionJournal::csv() const
{
    std::string out =
        "time,kind,request,chosen,reason,candidate,feasible,scores\n";
    for (const Decision &d : entries_) {
        const std::string prefix = fmt_num(d.time) + "," +
                                   to_string(d.kind) + "," +
                                   std::to_string(d.request) + "," +
                                   d.chosen + "," + d.reason + ",";
        if (d.candidates.empty()) {
            out += prefix + ",,\n";
            continue;
        }
        for (const DecisionOption &c : d.candidates) {
            out += prefix + c.target + "," +
                   (c.feasible ? "1" : "0") + ",\"";
            for (std::size_t i = 0; i < c.scores.size(); ++i) {
                if (i > 0)
                    out += ";";
                out += c.scores[i].first + "=" +
                       fmt_num(c.scores[i].second);
            }
            out += "\"\n";
        }
    }
    return out;
}

std::string
DecisionJournal::json() const
{
    std::string out = "{\"decisions\": [";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Decision &d = entries_[i];
        if (i > 0)
            out += ",";
        out += "\n  {\"time\": " + fmt_num(d.time) + ", \"kind\": \"" +
               to_string(d.kind) + "\", \"request\": " +
               std::to_string(d.request) + ", \"chosen\": \"" +
               json_escape(d.chosen) + "\", \"reason\": \"" +
               json_escape(d.reason) + "\", \"candidates\": [";
        for (std::size_t j = 0; j < d.candidates.size(); ++j) {
            const DecisionOption &c = d.candidates[j];
            if (j > 0)
                out += ", ";
            out += "{\"target\": \"" + json_escape(c.target) +
                   "\", \"feasible\": " +
                   (c.feasible ? "true" : "false") + ", \"scores\": {";
            for (std::size_t s = 0; s < c.scores.size(); ++s) {
                if (s > 0)
                    out += ", ";
                out += "\"" + json_escape(c.scores[s].first) +
                       "\": " + fmt_num(c.scores[s].second);
            }
            out += "}}";
        }
        out += "]}";
    }
    out += "\n]}\n";
    return out;
}

} // namespace windserve::obs
