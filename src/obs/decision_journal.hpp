/**
 * @file
 * Scheduler decision journal: WHY each dynamic-scheduling choice fell
 * the way it did.
 *
 * WindServe's contribution is stream-based dynamic scheduling — per-
 * request prefill dispatch (Algorithm 1), memory-pressure rescheduling
 * (migration), and backup-aware re-dispatch after faults. Aggregate
 * counters say how often each fired; the journal records each decision
 * with the candidate set considered, the loads/scores that drove it and
 * the chosen target, so a post-run query can answer "why did request
 * 1042 prefill on the decode instance?" without rerunning.
 *
 * Entries are appended in simulation order by the deciding component
 * (a nullable pointer, the same zero-cost-off pattern as tracing), so
 * the journal is a pure function of (config, workload) — byte-identical
 * at any `--jobs N`. Export targets: a flat CSV (one row per candidate)
 * and a JSON document (one object per decision).
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace windserve::obs {

/** Which scheduling mechanism produced the entry. */
enum class DecisionKind {
    Dispatch,   ///< Algorithm 1: where a new request's prefill runs
    Reschedule, ///< dynamic rescheduling under decode memory pressure
    Redispatch, ///< post-fault re-dispatch of a crash victim
    Failover,   ///< control-plane leader election (replica takeover)
};

const char *to_string(DecisionKind k);

/** One candidate target the scheduler weighed. */
struct DecisionOption {
    std::string target; ///< e.g. "prefill", "decode", "resume-backup"
    bool feasible = true;
    /** The numbers that scored this candidate (name -> value). */
    std::vector<std::pair<std::string, double>> scores;
};

/** One recorded decision. */
struct Decision {
    double time = 0.0;
    DecisionKind kind = DecisionKind::Dispatch;
    std::uint64_t request = 0;
    std::vector<DecisionOption> candidates;
    std::string chosen; ///< target of the winning candidate ("" = none)
    std::string reason; ///< machine-readable why (e.g. "ttft_over_thrd")
};

/** See file comment. */
class DecisionJournal
{
  public:
    DecisionJournal() = default;
    DecisionJournal(const DecisionJournal &) = delete;
    DecisionJournal &operator=(const DecisionJournal &) = delete;

    void record(Decision d) { entries_.push_back(std::move(d)); }

    /**
     * Merge per-pod journal shards (each internally in nondecreasing
     * time order — one logical process appends monotonically) into
     * this journal, restoring global time order with shard index as
     * the tie-break. Used by partitioned systems at end of replay:
     * each pod journals on its own thread into a private shard, so
     * the merged journal is a pure function of (config, workload),
     * independent of the worker-thread count. Shards are drained.
     */
    void merge_shards(const std::vector<DecisionJournal *> &shards);

    const std::vector<Decision> &entries() const { return entries_; }
    std::size_t size() const { return entries_.size(); }

    /** Entries of one kind. */
    std::size_t count(DecisionKind k) const;

    /** All decisions that touched @p request, in simulation order. */
    std::vector<const Decision *> for_request(std::uint64_t request) const;

    /** Flat CSV, one row per (decision, candidate):
     *  `time,kind,request,chosen,reason,candidate,feasible,scores`
     *  with scores packed `name=value` separated by `;`. */
    std::string csv() const;

    /** JSON document: `{"decisions": [...]}`. */
    std::string json() const;

  private:
    std::vector<Decision> entries_;
};

} // namespace windserve::obs
