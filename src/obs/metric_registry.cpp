#include "obs/metric_registry.hpp"

#include <cstdio>
#include <stdexcept>

#include "obs/trace_recorder.hpp"

namespace windserve::obs {

namespace {

/** Shortest exact decimal form of @p v (round-trips through strtod). */
std::string
fmt_num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    // Prefer the shortest representation that still round-trips; keeps
    // integers (queue depths, counts) rendering as "42" not "42.000...".
    for (int prec = 1; prec < 17; ++prec) {
        char probe[32];
        std::snprintf(probe, sizeof probe, "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(probe, "%lf", &back);
        if (back == v)
            return probe;
    }
    return buf;
}

} // namespace

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

Histogram::Histogram(Options o)
{
    if (o.num_buckets == 0 || o.num_buckets > 64)
        throw std::invalid_argument("Histogram: 1..64 finite buckets");
    if (!(o.first_bound > 0.0) || !(o.growth > 1.0))
        throw std::invalid_argument(
            "Histogram: first_bound > 0 and growth > 1 required");
    bounds_.reserve(o.num_buckets);
    double b = o.first_bound;
    for (std::size_t i = 0; i < o.num_buckets; ++i) {
        bounds_.push_back(b);
        b *= o.growth;
    }
    counts_.assign(o.num_buckets + 1, 0);
}

std::size_t
Histogram::bucket_index(double v) const
{
    for (std::size_t i = 0; i < bounds_.size(); ++i)
        if (v <= bounds_[i])
            return i;
    return bounds_.size(); // +inf bucket
}

void
Histogram::observe(double v)
{
    ++counts_[bucket_index(v)];
    ++count_;
    sum_ += v;
}

// ---------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------

void
MetricRegistry::note_family(const std::string &family,
                            const std::string &help, Kind kind)
{
    for (const Family &f : families_) {
        if (f.name == family) {
            if (f.kind != kind)
                throw std::logic_error(
                    "MetricRegistry: family '" + family +
                    "' registered with two instrument kinds");
            return;
        }
    }
    families_.push_back(Family{family, help, kind});
}

void
MetricRegistry::gauge(std::string family, std::string labels, Pull pull,
                      std::string help)
{
    note_family(family, help, Kind::Gauge);
    Instrument in;
    in.kind = Kind::Gauge;
    in.family = std::move(family);
    in.labels = std::move(labels);
    in.pull = std::move(pull);
    instruments_.push_back(std::move(in));
}

void
MetricRegistry::counter(std::string family, std::string labels, Pull pull,
                        std::string help)
{
    note_family(family, help, Kind::Counter);
    Instrument in;
    in.kind = Kind::Counter;
    in.family = std::move(family);
    in.labels = std::move(labels);
    in.pull = std::move(pull);
    instruments_.push_back(std::move(in));
}

Histogram *
MetricRegistry::histogram(std::string family, std::string labels,
                          Histogram::Options opts, std::string help)
{
    note_family(family, help, Kind::Hist);
    Instrument in;
    in.kind = Kind::Hist;
    in.family = std::move(family);
    in.labels = std::move(labels);
    in.hist = std::make_unique<Histogram>(opts);
    instruments_.push_back(std::move(in));
    return instruments_.back().hist.get();
}

void
MetricRegistry::sample(double t)
{
    times_.push_back(t);
    for (Instrument &in : instruments_) {
        if (in.kind == Kind::Hist)
            continue;
        in.values.push_back(in.pull ? in.pull() : 0.0);
    }
}

std::size_t
MetricRegistry::num_families() const
{
    return families_.size();
}

const MetricRegistry::Instrument *
MetricRegistry::find(const std::string &family,
                     const std::string &labels) const
{
    for (const Instrument &in : instruments_)
        if (in.family == family && in.labels == labels)
            return &in;
    return nullptr;
}

const std::vector<double> &
MetricRegistry::series(const std::string &family,
                       const std::string &labels) const
{
    const Instrument *in = find(family, labels);
    if (in == nullptr || in->kind == Kind::Hist)
        throw std::out_of_range("MetricRegistry::series: no sampled "
                                "instrument " +
                                family + "{" + labels + "}");
    return in->values;
}

double
MetricRegistry::last_value(const std::string &family,
                           const std::string &labels) const
{
    const Instrument *in = find(family, labels);
    if (in == nullptr || in->kind == Kind::Hist)
        throw std::out_of_range("MetricRegistry::last_value: no sampled "
                                "instrument " +
                                family + "{" + labels + "}");
    if (!in->values.empty())
        return in->values.back();
    return in->pull ? in->pull() : 0.0;
}

std::string
MetricRegistry::prometheus_text() const
{
    std::string out;
    for (const Family &f : families_) {
        if (!f.help.empty())
            out += "# HELP " + f.name + " " + f.help + "\n";
        const char *type = f.kind == Kind::Counter ? "counter"
                           : f.kind == Kind::Hist ? "histogram"
                                                  : "gauge";
        out += "# TYPE " + f.name + " " + type + "\n";
        for (const Instrument &in : instruments_) {
            if (in.family != f.name)
                continue;
            if (in.kind == Kind::Hist) {
                const Histogram &h = *in.hist;
                std::uint64_t cum = 0;
                const std::string sep = in.labels.empty() ? "" : ",";
                for (std::size_t b = 0; b < h.bounds().size(); ++b) {
                    cum += h.bucket_counts()[b];
                    out += f.name + "_bucket{" + in.labels + sep +
                           "le=\"" + fmt_num(h.bounds()[b]) + "\"} " +
                           std::to_string(cum) + "\n";
                }
                cum += h.bucket_counts().back();
                out += f.name + "_bucket{" + in.labels + sep +
                       "le=\"+Inf\"} " + std::to_string(cum) + "\n";
                out += f.name + "_sum" +
                       (in.labels.empty() ? "" : "{" + in.labels + "}") +
                       " " + fmt_num(h.sum()) + "\n";
                out += f.name + "_count" +
                       (in.labels.empty() ? "" : "{" + in.labels + "}") +
                       " " + std::to_string(h.count()) + "\n";
                continue;
            }
            double v = !in.values.empty() ? in.values.back()
                       : in.pull         ? in.pull()
                                         : 0.0;
            out += f.name;
            if (!in.labels.empty())
                out += "{" + in.labels + "}";
            out += " " + fmt_num(v) + "\n";
        }
    }
    return out;
}

std::string
MetricRegistry::csv() const
{
    // RFC 4180 quoting: the labels field contains `"` and `,`, so it is
    // quoted with inner quotes doubled — stock csv parsers round-trip it.
    auto quote = [](const std::string &s) {
        std::string q = "\"";
        for (char c : s) {
            q += c;
            if (c == '"')
                q += '"';
        }
        q += '"';
        return q;
    };
    std::string out = "time,family,labels,value\n";
    for (std::size_t i = 0; i < times_.size(); ++i) {
        for (const Instrument &in : instruments_) {
            if (in.kind == Kind::Hist)
                continue;
            out += fmt_num(times_[i]) + "," + in.family + "," +
                   quote(in.labels) + "," + fmt_num(in.values[i]) + "\n";
        }
    }
    return out;
}

void
MetricRegistry::merge_counter_tracks(TraceRecorder &rec) const
{
    for (const Instrument &in : instruments_) {
        if (in.kind == Kind::Hist)
            continue;
        std::string name = in.family;
        if (!in.labels.empty())
            name += "{" + in.labels + "}";
        for (std::size_t i = 0; i < times_.size(); ++i)
            rec.counter_at(times_[i], "telemetry", name, in.values[i]);
    }
}

} // namespace windserve::obs
