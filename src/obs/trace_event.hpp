/**
 * @file
 * Typed trace events captured by obs::TraceRecorder.
 *
 * The event model mirrors the Chrome trace-event format the recorder
 * exports (chrome://tracing, Perfetto): complete spans ('X') for work
 * with a known duration, async begin/end pairs ('b'/'e') for request
 * lifecycle phases keyed by request id, instants ('i') for scheduler
 * decisions, and counters ('C') for time series. Timestamps are
 * simulated seconds; the JSON exporter converts to microseconds.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace windserve::obs {

/** Top-level taxonomy; becomes the Chrome-trace `cat` field. */
enum class Category {
    Request,   ///< per-request lifecycle phases
    Gpu,       ///< per-instance execution passes (prefill/decode/...)
    Transfer,  ///< link occupancy (KV transfer, migration, swap DMA)
    Scheduler, ///< decision instants (dispatch, stream split, preemption)
    Counter,   ///< numeric time series (queue depth, pool bytes)
    Fault,     ///< injected faults and recovery milestones
};

const char *to_string(Category cat);

/** One key/value annotation attached to an event (`args` in the JSON). */
struct TraceArg {
    std::string key;
    std::string value; ///< pre-rendered JSON token
    bool quoted = false;
};

/** Numeric argument (rendered unquoted). */
TraceArg num_arg(std::string key, double value);
TraceArg num_arg(std::string key, std::uint64_t value);
/** String argument (escaped and quoted on export). */
TraceArg str_arg(std::string key, std::string value);

/** One recorded event. */
struct TraceEvent {
    char phase = 'i'; ///< 'X' span, 'b'/'e' async pair, 'i' instant, 'C' counter
    Category cat = Category::Request;
    std::string name;
    double ts = 0.0;  ///< simulated seconds
    double dur = 0.0; ///< span duration, seconds ('X' only)
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    std::uint64_t id = 0; ///< async-pair key ('b'/'e' only)
    bool has_id = false;
    std::vector<TraceArg> args;
};

} // namespace windserve::obs
