#include "obs/telemetry.hpp"

#include <algorithm>
#include <cstdio>

#include "simcore/simulator.hpp"

namespace windserve::obs {

Telemetry::Telemetry(TelemetryConfig cfg) : cfg_(cfg) {}

Telemetry::~Telemetry()
{
    // A run that throws mid-replay never reaches finish(); leave the
    // simulator without dangling hooks into this dying object.
    if (sim_ != nullptr) {
        sim_->set_batch_hook(nullptr);
        if (sim_->profiler() == &profiler_)
            sim_->set_profiler(nullptr);
        sim_ = nullptr;
    }
}

void
Telemetry::arm(sim::Simulator &sim)
{
    sim_ = &sim;
    if (cfg_.self_profile)
        sim.set_profiler(&profiler_);
    if (cfg_.sample_every > 0.0) {
        sim.set_batch_hook([this](double t) { on_batch(t); });
    }
}

void
Telemetry::arm_lp(sim::Simulator &sim)
{
    if (cfg_.self_profile)
        sim.set_profiler(&profiler_);
}

void
Telemetry::on_batch(double t)
{
    // Emit every tick strictly before the upcoming batch: at tick
    // τ = k * sample_every, all events with time <= τ have fired and
    // none with time > τ have, so pulls read exact piecewise-constant
    // state. (The τ == t tick is deferred until the t-batch completes.)
    const double dt = cfg_.sample_every;
    for (double tau = static_cast<double>(next_tick_) * dt; tau < t;
         tau = static_cast<double>(++next_tick_) * dt)
        registry_.sample(tau);
}

void
Telemetry::finish(double final_time)
{
    if (finished_)
        return;
    finished_ = true;
    if (cfg_.sample_every > 0.0) {
        // Trailing grid ticks the pump never got past, inclusive of a
        // tick landing exactly on the end of the run.
        const double dt = cfg_.sample_every;
        double tau = static_cast<double>(next_tick_) * dt;
        for (; tau <= final_time;
             tau = static_cast<double>(++next_tick_) * dt)
            registry_.sample(tau);
        // Closing off-grid sample so the series always ends at the
        // final simulated state.
        const bool on_grid =
            next_tick_ > 0 &&
            static_cast<double>(next_tick_ - 1) * dt == final_time;
        if (!on_grid)
            registry_.sample(final_time);
    } else {
        registry_.sample(final_time);
    }
    if (sim_ != nullptr) {
        sim_->set_batch_hook(nullptr);
        if (sim_->profiler() == &profiler_)
            sim_->set_profiler(nullptr);
        sim_ = nullptr;
    }
}

std::string
Telemetry::profile_table(bool include_wall) const
{
    struct Row {
        std::string name;
        std::uint64_t fired;
        std::uint64_t wall_ns;
    };
    std::vector<Row> rows;
    for (std::size_t i = 0; i < profiler_.num_sources(); ++i) {
        const auto id = static_cast<std::uint16_t>(i);
        const sim::PumpProfiler::Bucket b = profiler_.bucket(id);
        if (b.fired == 0)
            continue;
        rows.push_back(Row{profiler_.name(id), b.fired, b.wall_ns});
    }
    // Tie-break by NAME, not id: under intra-run parallelism (lp.hpp)
    // every LP shares this profiler and intern order — hence id order —
    // depends on thread scheduling, while per-name counts do not.
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        if (a.fired != b.fired)
            return a.fired > b.fired;
        return a.name < b.name;
    });

    const std::uint64_t total = profiler_.total_fired();
    std::string out = include_wall
        ? "source                        fired   share    wall_ms  ns/event\n"
        : "source                        fired   share\n";
    char line[160];
    for (const Row &r : rows) {
        const double share =
            total > 0 ? 100.0 * static_cast<double>(r.fired) /
                            static_cast<double>(total)
                      : 0.0;
        if (include_wall) {
            const double wall_ms =
                static_cast<double>(r.wall_ns) / 1.0e6;
            const double ns_per =
                static_cast<double>(r.wall_ns) /
                static_cast<double>(r.fired);
            std::snprintf(line, sizeof line,
                          "%-26s %8llu  %5.1f%%  %9.3f  %8.1f\n",
                          r.name.c_str(),
                          static_cast<unsigned long long>(r.fired),
                          share, wall_ms, ns_per);
        } else {
            std::snprintf(line, sizeof line, "%-26s %8llu  %5.1f%%\n",
                          r.name.c_str(),
                          static_cast<unsigned long long>(r.fired),
                          share);
        }
        out += line;
    }
    std::snprintf(line, sizeof line,
                  "total                      %8llu  attributed %.1f%%\n",
                  static_cast<unsigned long long>(total),
                  100.0 * profiler_.attributed_fraction());
    out += line;
    return out;
}

} // namespace windserve::obs
