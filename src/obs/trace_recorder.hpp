/**
 * @file
 * Per-run structured trace recording with Chrome-trace export.
 *
 * A TraceRecorder is owned by one ServingSystem run (no globals), reads
 * its timebase from that system's Simulator, and appends typed events
 * in simulation order — so traces are bit-identical at any `--jobs N`
 * and TSan-clean under the parallel sweep engine. Components hold a
 * nullable `TraceRecorder *` and skip every emission when tracing is
 * off (the null-recorder fast path: one pointer test, zero
 * allocations), keeping untraced runs byte-identical to a build without
 * the hooks.
 *
 * Export targets:
 *  - chrome_json(): Chrome trace-event JSON (load in chrome://tracing
 *    or https://ui.perfetto.dev). Processes are instances/links
 *    (pid=instance), tracks are GPU slots / decode groups / link
 *    directions (tid).
 *  - request_csv(): the per-request lifecycle table
 *    (workload::write_results_csv schema).
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace_event.hpp"

namespace windserve::sim {
class Simulator;
}
namespace windserve::workload {
struct Request;
}

namespace windserve::obs {

/** See file comment. */
class TraceRecorder
{
  public:
    /** @param sim the owning run's simulation kernel (timebase). */
    explicit TraceRecorder(const sim::Simulator &sim);

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /** Current simulated time (seconds). */
    double now() const;

    // ------------------------------------------------------------------
    // event emission
    // ------------------------------------------------------------------

    /** Complete span [start, start+dur] on @p process / @p track. */
    void span(Category cat, const std::string &process,
              const std::string &track, const std::string &name,
              double start, double dur, std::vector<TraceArg> args = {});

    /** Async begin/end pair keyed by @p id (request lifecycle phases). */
    void async_span(Category cat, const std::string &process,
                    const std::string &name, std::uint64_t id, double start,
                    double end, std::vector<TraceArg> args = {});

    /** Instantaneous event at the current simulated time. */
    void instant(Category cat, const std::string &process,
                 const std::string &track, const std::string &name,
                 std::vector<TraceArg> args = {});

    /** Counter sample at the current simulated time. */
    void counter(const std::string &process, const std::string &name,
                 double value);

    /** Counter sample at an explicit timestamp (series replay). */
    void counter_at(double ts, const std::string &process,
                    const std::string &name, double value);

    /**
     * Derive the lifecycle spans of @p r from its recorded timestamps
     * (arrive -> prefill-queue -> prefill -> KV-transfer -> decode-queue
     * -> decode -> finish). Unfinished requests contribute only the
     * phases that completed plus an "unfinished" instant.
     */
    void record_request_lifecycle(const workload::Request &r);

    /**
     * Move every event recorded in @p shard into this recorder,
     * re-interning process/track names into this recorder's tables
     * (ids differ across recorders). Used by partitioned systems
     * (intra-run parallelism): each logical process records into a
     * private shard on its own thread, and the owner absorbs the
     * shards in a fixed order at end of replay — so the merged trace
     * is a pure function of (config, workload), independent of the
     * worker-thread count. Events are appended in shard order (the
     * Chrome trace format does not require global ts order); @p shard
     * is left empty.
     */
    void absorb_shard(TraceRecorder &shard);

    // ------------------------------------------------------------------
    // introspection & export
    // ------------------------------------------------------------------

    const std::vector<TraceEvent> &events() const { return events_; }
    std::size_t num_events() const { return events_.size(); }

    /** Events recorded in @p cat. */
    std::size_t count(Category cat) const;

    /** Full Chrome trace-event JSON document. */
    std::string chrome_json() const;
    void write_chrome_json(std::ostream &out) const;

    /** Per-request lifecycle CSV (write_results_csv schema). */
    static std::string
    request_csv(const std::vector<workload::Request> &requests);

  private:
    std::uint32_t intern_pid(const std::string &process);
    std::uint32_t intern_tid(std::uint32_t pid, const std::string &track);

    const sim::Simulator &sim_;
    std::vector<TraceEvent> events_;

    struct Track {
        std::uint32_t pid;
        std::string name;
    };
    std::vector<std::string> processes_; ///< pid-1 -> name
    std::vector<Track> tracks_;          ///< tid-1 -> (pid, name)
    std::unordered_map<std::string, std::uint32_t> pid_by_name_;
    std::unordered_map<std::string, std::uint32_t> tid_by_key_;
};

} // namespace windserve::obs
