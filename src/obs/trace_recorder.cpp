#include "obs/trace_recorder.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "simcore/simulator.hpp"
#include "workload/request.hpp"
#include "workload/trace_io.hpp"

namespace windserve::obs {

const char *
to_string(Category cat)
{
    switch (cat) {
      case Category::Request:
        return "request";
      case Category::Gpu:
        return "gpu";
      case Category::Transfer:
        return "transfer";
      case Category::Scheduler:
        return "scheduler";
      case Category::Counter:
        return "counter";
      case Category::Fault:
        return "fault";
    }
    return "unknown";
}

TraceArg
num_arg(std::string key, double value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return TraceArg{std::move(key), buf, false};
}

TraceArg
num_arg(std::string key, std::uint64_t value)
{
    return TraceArg{std::move(key), std::to_string(value), false};
}

TraceArg
str_arg(std::string key, std::string value)
{
    return TraceArg{std::move(key), std::move(value), true};
}

TraceRecorder::TraceRecorder(const sim::Simulator &sim) : sim_(sim) {}

double
TraceRecorder::now() const
{
    return sim_.now();
}

std::uint32_t
TraceRecorder::intern_pid(const std::string &process)
{
    auto it = pid_by_name_.find(process);
    if (it != pid_by_name_.end())
        return it->second;
    processes_.push_back(process);
    std::uint32_t pid = static_cast<std::uint32_t>(processes_.size());
    pid_by_name_.emplace(process, pid);
    return pid;
}

std::uint32_t
TraceRecorder::intern_tid(std::uint32_t pid, const std::string &track)
{
    std::string key = std::to_string(pid) + "/" + track;
    auto it = tid_by_key_.find(key);
    if (it != tid_by_key_.end())
        return it->second;
    tracks_.push_back(Track{pid, track});
    std::uint32_t tid = static_cast<std::uint32_t>(tracks_.size());
    tid_by_key_.emplace(std::move(key), tid);
    return tid;
}

void
TraceRecorder::span(Category cat, const std::string &process,
                    const std::string &track, const std::string &name,
                    double start, double dur, std::vector<TraceArg> args)
{
    TraceEvent e;
    e.phase = 'X';
    e.cat = cat;
    e.name = name;
    e.ts = start;
    e.dur = dur;
    e.pid = intern_pid(process);
    e.tid = intern_tid(e.pid, track);
    e.args = std::move(args);
    events_.push_back(std::move(e));
}

void
TraceRecorder::async_span(Category cat, const std::string &process,
                          const std::string &name, std::uint64_t id,
                          double start, double end,
                          std::vector<TraceArg> args)
{
    std::uint32_t pid = intern_pid(process);
    TraceEvent b;
    b.phase = 'b';
    b.cat = cat;
    b.name = name;
    b.ts = start;
    b.pid = pid;
    b.tid = 0;
    b.id = id;
    b.has_id = true;
    b.args = std::move(args);
    events_.push_back(std::move(b));

    TraceEvent e;
    e.phase = 'e';
    e.cat = cat;
    e.name = name;
    e.ts = end;
    e.pid = pid;
    e.tid = 0;
    e.id = id;
    e.has_id = true;
    events_.push_back(std::move(e));
}

void
TraceRecorder::instant(Category cat, const std::string &process,
                       const std::string &track, const std::string &name,
                       std::vector<TraceArg> args)
{
    TraceEvent e;
    e.phase = 'i';
    e.cat = cat;
    e.name = name;
    e.ts = now();
    e.pid = intern_pid(process);
    e.tid = intern_tid(e.pid, track);
    e.args = std::move(args);
    events_.push_back(std::move(e));
}

void
TraceRecorder::counter(const std::string &process, const std::string &name,
                       double value)
{
    counter_at(now(), process, name, value);
}

void
TraceRecorder::counter_at(double ts, const std::string &process,
                          const std::string &name, double value)
{
    TraceEvent e;
    e.phase = 'C';
    e.cat = Category::Counter;
    e.name = name;
    e.ts = ts;
    e.pid = intern_pid(process);
    e.tid = 0;
    e.args.push_back(num_arg("value", value));
    events_.push_back(std::move(e));
}

void
TraceRecorder::record_request_lifecycle(const workload::Request &r)
{
    using workload::kNoTime;
    const std::uint64_t id = r.id;
    auto have = [](double t) { return t != kNoTime; };

    if (r.finished() && have(r.finish_time)) {
        async_span(Category::Request, "requests", "request", id,
                   r.arrival_time, r.finish_time,
                   {num_arg("prompt", std::uint64_t(r.prompt_tokens)),
                    num_arg("output", std::uint64_t(r.output_tokens)),
                    num_arg("swap_outs", std::uint64_t(r.swap_outs)),
                    num_arg("migrations", std::uint64_t(r.migrations)),
                    num_arg("dispatched",
                            std::uint64_t(r.prefill_dispatched ? 1 : 0))});
    }
    if (have(r.prefill_enqueue_time) && have(r.prefill_start_time)) {
        async_span(Category::Request, "requests", "queue-prefill", id,
                   r.prefill_enqueue_time, r.prefill_start_time);
    }
    if (have(r.prefill_start_time) && have(r.first_token_time)) {
        async_span(Category::Request, "requests", "prefill", id,
                   r.prefill_start_time, r.first_token_time,
                   {num_arg("tokens", std::uint64_t(r.prompt_tokens))});
    }
    if (have(r.first_token_time) && have(r.transfer_done_time) &&
        r.transfer_done_time > r.first_token_time) {
        async_span(Category::Request, "requests", "kv-transfer", id,
                   r.first_token_time, r.transfer_done_time);
    }
    if (have(r.decode_enqueue_time) && have(r.decode_start_time)) {
        async_span(Category::Request, "requests", "queue-decode", id,
                   r.decode_enqueue_time, r.decode_start_time);
    }
    if (have(r.decode_start_time) && r.finished() && have(r.finish_time)) {
        async_span(Category::Request, "requests", "decode", id,
                   r.decode_start_time, r.finish_time,
                   {num_arg("tokens", std::uint64_t(r.generated))});
    }
    if (!r.finished()) {
        TraceEvent e;
        e.phase = 'i';
        e.cat = Category::Request;
        e.name = "unfinished";
        e.ts = have(r.last_token_time) ? r.last_token_time : r.arrival_time;
        e.pid = intern_pid("requests");
        e.tid = intern_tid(e.pid, "unfinished");
        e.args.push_back(num_arg("req", id));
        e.args.push_back(str_arg("state", to_string(r.state)));
        events_.push_back(std::move(e));
    }
}

void
TraceRecorder::absorb_shard(TraceRecorder &shard)
{
    events_.reserve(events_.size() + shard.events_.size());
    for (TraceEvent &e : shard.events_) {
        if (e.pid != 0) {
            const std::string &proc = shard.processes_[e.pid - 1];
            std::uint32_t pid = intern_pid(proc);
            if (e.tid != 0) {
                const Track &trk = shard.tracks_[e.tid - 1];
                e.tid = intern_tid(pid, trk.name);
            }
            e.pid = pid;
        }
        events_.push_back(std::move(e));
    }
    shard.events_.clear();
}

std::size_t
TraceRecorder::count(Category cat) const
{
    std::size_t n = 0;
    for (const auto &e : events_)
        if (e.cat == cat)
            ++n;
    return n;
}

namespace {

/** Seconds -> microseconds with fixed precision (determinism matters:
 *  the same run must serialise to the same bytes at any --jobs). */
void
emit_us(std::ostream &out, double seconds)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
    out << buf;
}

void
emit_escaped(std::ostream &out, const std::string &s)
{
    out << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out << "\\\"";
            break;
          case '\\':
            out << "\\\\";
            break;
          case '\n':
            out << "\\n";
            break;
          case '\t':
            out << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out << buf;
            } else {
                out << c;
            }
        }
    }
    out << '"';
}

void
emit_args(std::ostream &out, const std::vector<TraceArg> &args)
{
    out << "{";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (i)
            out << ",";
        emit_escaped(out, args[i].key);
        out << ":";
        if (args[i].quoted)
            emit_escaped(out, args[i].value);
        else
            out << args[i].value;
    }
    out << "}";
}

} // namespace

void
TraceRecorder::write_chrome_json(std::ostream &out) const
{
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            out << ",";
        first = false;
        out << "\n";
    };

    // Metadata: name every process and track so Perfetto shows
    // instance/GPU labels instead of bare pids.
    for (std::size_t p = 0; p < processes_.size(); ++p) {
        sep();
        out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << (p + 1)
            << ",\"tid\":0,\"args\":{\"name\":";
        emit_escaped(out, processes_[p]);
        out << "}}";
    }
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
        sep();
        out << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":"
            << tracks_[t].pid << ",\"tid\":" << (t + 1)
            << ",\"args\":{\"name\":";
        emit_escaped(out, tracks_[t].name);
        out << "}}";
    }

    for (const auto &e : events_) {
        sep();
        out << "{\"ph\":\"" << e.phase << "\",\"cat\":\""
            << obs::to_string(e.cat) << "\",\"name\":";
        emit_escaped(out, e.name);
        out << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid << ",\"ts\":";
        emit_us(out, e.ts);
        if (e.phase == 'X') {
            out << ",\"dur\":";
            emit_us(out, e.dur);
        }
        if (e.has_id)
            out << ",\"id\":" << e.id;
        if (e.phase == 'i')
            out << ",\"s\":\"t\"";
        if (!e.args.empty()) {
            out << ",\"args\":";
            emit_args(out, e.args);
        }
        out << "}";
    }
    out << "\n]}\n";
}

std::string
TraceRecorder::chrome_json() const
{
    std::ostringstream out;
    write_chrome_json(out);
    return out.str();
}

std::string
TraceRecorder::request_csv(const std::vector<workload::Request> &requests)
{
    std::ostringstream out;
    workload::write_results_csv(out, requests);
    return out.str();
}

} // namespace windserve::obs
