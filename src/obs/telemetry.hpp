/**
 * @file
 * Per-run telemetry: metric sampling, decision journal, self-profiler.
 *
 * A Telemetry object is owned by one ServingSystem run (no globals) and
 * bundles the three observability pillars:
 *  - a MetricRegistry the system's components register instruments on
 *    (wire_telemetry()), sampled every `sample_every` simulated seconds;
 *  - a DecisionJournal the scheduler appends dispatch / reschedule /
 *    re-dispatch decisions to;
 *  - a sim::PumpProfiler attributing fired events (and host wall-clock)
 *    to named event sources.
 *
 * Sampling rides the Simulator's batch hook instead of scheduling its
 * own events, so an instrumented run fires the exact same event
 * sequence as a bare one: request outcomes, metrics and traces are
 * byte-identical with telemetry on or off, and the sampled series are
 * bit-identical at any `--jobs N`.
 */
#pragma once

#include <memory>
#include <string>

#include "obs/decision_journal.hpp"
#include "obs/metric_registry.hpp"
#include "simcore/pump_profiler.hpp"

namespace windserve::sim {
class Simulator;
}

namespace windserve::obs {

/** Per-run telemetry options (engine::RunOptions::telemetry). */
struct TelemetryConfig {
    /** Sim-seconds between metric samples; <= 0 disables periodic
     *  sampling (a single end-of-run sample is always taken). */
    double sample_every = 1.0;
    /** Attach the event-pump self-profiler. */
    bool self_profile = true;
    /** Record scheduler decisions into the journal. */
    bool journal = true;
};

/** See file comment. */
class Telemetry
{
  public:
    explicit Telemetry(TelemetryConfig cfg);
    ~Telemetry();

    Telemetry(const Telemetry &) = delete;
    Telemetry &operator=(const Telemetry &) = delete;

    const TelemetryConfig &config() const { return cfg_; }

    MetricRegistry &registry() { return registry_; }
    const MetricRegistry &registry() const { return registry_; }

    /** The journal, or nullptr when cfg.journal is off — components
     *  hold the nullable pointer (zero-cost-off, like tracing). */
    DecisionJournal *journal()
    {
        return cfg_.journal ? &journal_ : nullptr;
    }
    const DecisionJournal &journal_data() const { return journal_; }

    sim::PumpProfiler &profiler() { return profiler_; }
    const sim::PumpProfiler &profiler() const { return profiler_; }

    /**
     * Hook into @p sim: installs the batch-boundary sampler and (if
     * configured) the event-pump profiler. Call after every instrument
     * is registered and before the replay schedules its first event.
     */
    void arm(sim::Simulator &sim);

    /**
     * Attach only the event-pump self-profiler (if configured) to a
     * logical process's simulator. Partitioned systems (intra-run
     * parallelism) call this for every LP kernel so events fired on
     * worker threads are attributed too — the profiler's accounting
     * is lock-free and order-independent, so totals stay identical at
     * any thread count. The batch-boundary sampler stays on the hub
     * simulator arm() was given: metric sampling must see a globally
     * consistent state, which only hub batches guarantee.
     */
    void arm_lp(sim::Simulator &sim);

    /**
     * End-of-run flush: emit the remaining sample ticks up to
     * @p final_time (plus one closing sample at @p final_time itself
     * when off-grid) and detach from the simulator.
     */
    void finish(double final_time);

    /**
     * Self-profiler report: one row per event source, sorted by fired
     * count (desc, source id tiebreak), with count and share columns.
     * @p include_wall adds host wall-clock columns (ms and ns/event) —
     * useful for humans, non-deterministic across runs; leave it off
     * for byte-identity comparisons.
     */
    std::string profile_table(bool include_wall = false) const;

    /** Fraction of fired events attributed to a named source. */
    double attributed_fraction() const
    {
        return profiler_.attributed_fraction();
    }

  private:
    void on_batch(double t);

    TelemetryConfig cfg_;
    MetricRegistry registry_;
    DecisionJournal journal_;
    sim::PumpProfiler profiler_;
    sim::Simulator *sim_ = nullptr;
    std::uint64_t next_tick_ = 0; ///< next sample index (tick k = k*dt)
    bool finished_ = false;
};

} // namespace windserve::obs
